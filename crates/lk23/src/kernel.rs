//! The Livermore Kernel 23: a 2-D implicit hydrodynamics fragment.
//!
//! The original LINPACK loop is
//!
//! ```text
//! DO 23 j = 2,6
//!   DO 23 k = 2,n
//!     QA = ZA(k,j+1)*ZR(k,j) + ZA(k,j-1)*ZB(k,j)
//!        + ZA(k+1,j)*ZU(k,j) + ZA(k-1,j)*ZV(k,j) + ZZ(k,j)
//! 23  ZA(k,j) = ZA(k,j) + 0.175*(QA - ZA(k,j))
//! ```
//!
//! i.e. a 5-point implicit relaxation of the `ZA` field with per-point
//! coefficients.  Two sweep flavours are provided:
//!
//! * [`sweep_gauss_seidel`] — the faithful in-place update of the original
//!   loop (each point sees already-updated west/north neighbours);
//! * [`sweep_jacobi`] — the double-buffered variant used by the parallel
//!   implementations, whose result is independent of the update order and
//!   therefore lets the block-decomposed ORWL and OpenMP-like versions be
//!   verified bit-for-bit against the sequential reference.
//!
//! The coefficient fields `ZR`, `ZB`, `ZU`, `ZV`, `ZZ` are evaluated on the
//! fly from a deterministic closed form (`coeff`) rather than stored: this
//! keeps the arithmetic profile of the kernel (4 multiplies, 5 adds, 1
//! relaxation blend per point) while letting the 16384×16384 configuration
//! of the paper exist as a *workload description* without 1.6 GB of
//! coefficient arrays per field.

/// Relaxation factor of the kernel (0.175 in the original loop).
pub const RELAXATION: f64 = 0.175;

/// Deterministic coefficient fields.  `field` selects ZR/ZB/ZU/ZV/ZZ by
/// index 0..=4; the values are smooth, O(1) and distinct per field so the
/// computation does not degenerate.
#[inline]
pub fn coeff(field: usize, row: usize, col: usize) -> f64 {
    let r = row as f64;
    let c = col as f64;
    match field {
        0 => 0.20 + 0.05 * ((r * 0.013).sin() * (c * 0.017).cos()),
        1 => 0.20 + 0.05 * ((r * 0.011).cos() * (c * 0.019).sin()),
        2 => 0.20 + 0.05 * ((r * 0.007).sin() + (c * 0.003).sin()) * 0.5,
        3 => 0.20 + 0.05 * ((r * 0.005).cos() + (c * 0.009).cos()) * 0.5,
        _ => 0.01 * ((r + 2.0 * c) * 0.001).sin(),
    }
}

/// A dense `rows × cols` grid of doubles (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Grid {
    /// Creates a grid filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Grid { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the canonical LK23 initial condition: a smooth deterministic
    /// field, identical for every implementation.
    pub fn initial(rows: usize, cols: usize) -> Self {
        let mut g = Grid::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                g.set(r, c, 1.0 + 0.1 * ((r as f64) * 0.02).sin() + 0.1 * ((c as f64) * 0.03).cos());
            }
        }
        g
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        self.data[row * self.cols + col] = v;
    }

    /// Raw row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Maximum absolute difference with another grid of identical shape.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn max_abs_diff(&self, other: &Grid) -> f64 {
        assert_eq!(self.rows, other.rows, "grid row mismatch");
        assert_eq!(self.cols, other.cols, "grid column mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Sum of all elements (a cheap checksum used by benchmarks).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// One LK23 update of an interior point, reading neighbours from `read` and
/// returning the new value.
#[inline]
pub fn update_point(read: &Grid, row: usize, col: usize) -> f64 {
    let qa = read.get(row, col + 1) * coeff(0, row, col)
        + read.get(row, col - 1) * coeff(1, row, col)
        + read.get(row + 1, col) * coeff(2, row, col)
        + read.get(row - 1, col) * coeff(3, row, col)
        + coeff(4, row, col);
    let za = read.get(row, col);
    za + RELAXATION * (qa - za)
}

/// One in-place Gauss-Seidel sweep over the interior (the original loop's
/// update order: row by row, column by column).
pub fn sweep_gauss_seidel(grid: &mut Grid) {
    for r in 1..grid.rows() - 1 {
        for c in 1..grid.cols() - 1 {
            let qa = grid.get(r, c + 1) * coeff(0, r, c)
                + grid.get(r, c - 1) * coeff(1, r, c)
                + grid.get(r + 1, c) * coeff(2, r, c)
                + grid.get(r - 1, c) * coeff(3, r, c)
                + coeff(4, r, c);
            let za = grid.get(r, c);
            grid.set(r, c, za + RELAXATION * (qa - za));
        }
    }
}

/// One double-buffered (Jacobi-style) sweep: reads `src`, writes the interior
/// of `dst`; boundary values are copied unchanged.
///
/// # Panics
/// Panics when the two grids have different shapes.
pub fn sweep_jacobi(src: &Grid, dst: &mut Grid) {
    assert_eq!(src.rows(), dst.rows(), "grid row mismatch");
    assert_eq!(src.cols(), dst.cols(), "grid column mismatch");
    for r in 0..src.rows() {
        for c in 0..src.cols() {
            if r == 0 || c == 0 || r == src.rows() - 1 || c == src.cols() - 1 {
                dst.set(r, c, src.get(r, c));
            } else {
                dst.set(r, c, update_point(src, r, c));
            }
        }
    }
}

/// Runs `iterations` Jacobi sweeps sequentially and returns the final grid —
/// the reference every parallel implementation is verified against.
pub fn reference_jacobi(initial: &Grid, iterations: usize) -> Grid {
    let mut a = initial.clone();
    let mut b = Grid::zeros(initial.rows(), initial.cols());
    for _ in 0..iterations {
        sweep_jacobi(&a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Runs `iterations` Gauss-Seidel sweeps sequentially (the original LINPACK
/// update order).
pub fn reference_gauss_seidel(initial: &Grid, iterations: usize) -> Grid {
    let mut a = initial.clone();
    for _ in 0..iterations {
        sweep_gauss_seidel(&mut a);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_accessors_roundtrip() {
        let mut g = Grid::zeros(4, 6);
        assert_eq!(g.rows(), 4);
        assert_eq!(g.cols(), 6);
        g.set(2, 5, 3.25);
        assert_eq!(g.get(2, 5), 3.25);
        assert_eq!(g.as_slice().len(), 24);
        g.as_mut_slice()[0] = 1.0;
        assert_eq!(g.get(0, 0), 1.0);
    }

    #[test]
    fn initial_condition_is_deterministic_and_nontrivial() {
        let a = Grid::initial(16, 16);
        let b = Grid::initial(16, 16);
        assert_eq!(a, b);
        // Not constant: at least two different values.
        let first = a.get(0, 0);
        assert!(a.as_slice().iter().any(|&v| (v - first).abs() > 1e-9));
    }

    #[test]
    fn coefficients_are_bounded_and_field_dependent() {
        for field in 0..5 {
            for &(r, c) in &[(0usize, 0usize), (7, 3), (100, 200), (16383, 16383)] {
                let v = coeff(field, r, c);
                assert!(v.abs() < 1.0, "field {field} at ({r},{c}) = {v}");
            }
        }
        assert_ne!(coeff(0, 5, 5), coeff(1, 5, 5));
    }

    #[test]
    fn jacobi_sweep_preserves_boundary() {
        let src = Grid::initial(8, 8);
        let mut dst = Grid::zeros(8, 8);
        sweep_jacobi(&src, &mut dst);
        for i in 0..8 {
            assert_eq!(dst.get(0, i), src.get(0, i));
            assert_eq!(dst.get(7, i), src.get(7, i));
            assert_eq!(dst.get(i, 0), src.get(i, 0));
            assert_eq!(dst.get(i, 7), src.get(i, 7));
        }
        // Interior did change.
        assert!(dst.max_abs_diff(&src) > 0.0);
    }

    #[test]
    fn jacobi_iterations_converge_towards_a_fixed_point() {
        // The relaxation is a contraction for these coefficient magnitudes:
        // successive iterates get closer to each other.
        let g0 = Grid::initial(32, 32);
        let g1 = reference_jacobi(&g0, 1);
        let g5 = reference_jacobi(&g0, 5);
        let g6 = reference_jacobi(&g0, 6);
        let early_delta = g1.max_abs_diff(&g0);
        let late_delta = g6.max_abs_diff(&g5);
        assert!(late_delta < early_delta, "late {late_delta} vs early {early_delta}");
    }

    #[test]
    fn gauss_seidel_differs_from_jacobi_but_stays_close() {
        let g0 = Grid::initial(24, 24);
        let j = reference_jacobi(&g0, 3);
        let gs = reference_gauss_seidel(&g0, 3);
        let diff = j.max_abs_diff(&gs);
        assert!(diff > 0.0, "the two sweeps should not be identical");
        assert!(diff < 0.5, "but they relax the same field: diff {diff}");
    }

    #[test]
    fn zero_iterations_returns_initial() {
        let g0 = Grid::initial(8, 8);
        assert_eq!(reference_jacobi(&g0, 0), g0);
        assert_eq!(reference_gauss_seidel(&g0, 0), g0);
    }

    #[test]
    fn checksum_and_diff_helpers() {
        let a = Grid::initial(8, 8);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(3, 3, b.get(3, 3) + 0.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        assert!((b.checksum() - a.checksum() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn diff_of_mismatched_grids_panics() {
        Grid::zeros(4, 4).max_abs_diff(&Grid::zeros(4, 5));
    }
}
