//! Simulator models of the three LK23 implementations.
//!
//! The paper's evaluation (Figure 1) runs a 16384×16384 double-precision
//! LK23 for 100 iterations on a 192-core SMP machine.  That machine is not
//! available here, so this module maps the workload onto the
//! `orwl-numasim` simulator: the *same* block decomposition, the *same*
//! communication matrix, and the *same* placement algorithm as the real
//! runtime, executed under the machine cost model.  The three scenarios of
//! the figure differ exactly as the real implementations do:
//!
//! * **ORWL Bind** — blocks placed by TreeMatch, data first-touched locally;
//! * **ORWL NoBind** — same task structure, threads and data wherever the OS
//!   put them;
//! * **OpenMP** — fork-join row bands, data first-touched by the master
//!   thread, implicit barrier per sweep.

use crate::blocks::BlockDecomposition;
use orwl_comm::matrix::CommMatrix;
use orwl_numasim::exec::{simulate, SimReport};
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_treematch::algorithm::{TreeMatchConfig, TreeMatchMapper};
use orwl_treematch::control::ControlThreadSpec;

/// Bytes streamed from memory per grid point and per sweep in the simulator
/// model: `ZA` (read + write) plus the five coefficient fields `ZR`, `ZB`,
/// `ZU`, `ZV`, `ZZ`, eight bytes each.
pub const SIM_BYTES_PER_POINT: f64 = 56.0;

/// A Livermore Kernel 23 workload description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lk23Workload {
    /// Side of the square matrix (the paper uses 16384).
    pub matrix_size: usize,
    /// Blocks along the row dimension.
    pub blocks_r: usize,
    /// Blocks along the column dimension.
    pub blocks_c: usize,
    /// Number of sweeps (the paper uses 100).
    pub iterations: usize,
}

impl Lk23Workload {
    /// The paper's workload (16384² doubles, 100 iterations) decomposed into
    /// one block per core of the target machine.
    pub fn paper_for_cores(cores: usize) -> Self {
        let (blocks_r, blocks_c) = near_square_factors(cores);
        Lk23Workload { matrix_size: 16384, blocks_r, blocks_c, iterations: 100 }
    }

    /// A custom workload.
    pub fn new(matrix_size: usize, blocks_r: usize, blocks_c: usize, iterations: usize) -> Self {
        Lk23Workload { matrix_size, blocks_r, blocks_c, iterations }
    }

    /// Number of block tasks.
    pub fn n_tasks(&self) -> usize {
        self.blocks_r * self.blocks_c
    }

    /// The block decomposition geometry.
    pub fn decomposition(&self) -> BlockDecomposition {
        BlockDecomposition::new(self.matrix_size, self.matrix_size, self.blocks_r, self.blocks_c)
            .expect("workload dimensions are valid")
    }

    /// The block-to-block communication matrix (bytes per iteration).
    pub fn comm_matrix(&self) -> CommMatrix {
        self.decomposition().comm_matrix(std::mem::size_of::<f64>())
    }

    /// The per-iteration task graph fed to the simulator.
    ///
    /// Each grid point streams [`SIM_BYTES_PER_POINT`] bytes per sweep: the
    /// old and new `ZA` values plus the five coefficient fields of the
    /// original kernel (7 × 8 bytes), which is what the real memory system
    /// would move even though the Rust kernel recomputes the coefficients.
    pub fn task_graph(&self) -> TaskGraph {
        let d = self.decomposition();
        let tasks = (0..d.n_blocks())
            .map(|idx| {
                let (bi, bj) = d.block_coords(idx);
                let elements = (d.row_range(bi).len() * d.col_range(bj).len()) as f64;
                orwl_numasim::taskgraph::SimTask { elements, private_bytes: elements * SIM_BYTES_PER_POINT }
            })
            .collect();
        let m = self.comm_matrix();
        let mut edges = Vec::new();
        for src in 0..m.order() {
            for dst in 0..m.order() {
                let bytes = m.get(src, dst);
                if bytes > 0.0 {
                    edges.push(orwl_numasim::taskgraph::SimEdge { src, dst, bytes });
                }
            }
        }
        TaskGraph::new(tasks, edges)
    }
}

/// Splits `n` into the pair of factors closest to a square (e.g. 192 → 12 × 16).
pub fn near_square_factors(n: usize) -> (usize, usize) {
    assert!(n > 0, "cannot factor zero");
    let mut best = (1, n);
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = (d, n / d);
        }
        d += 1;
    }
    best
}

/// The three implementations compared in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplKind {
    /// ORWL with the topology-aware placement module (the paper's "Bind").
    OrwlBind,
    /// ORWL without any binding.
    OrwlNoBind,
    /// The OpenMP-style fork-join baseline.
    OpenMp,
}

impl ImplKind {
    /// All three implementations, in the order the paper plots them.
    pub fn all() -> [ImplKind; 3] {
        [ImplKind::OpenMp, ImplKind::OrwlNoBind, ImplKind::OrwlBind]
    }

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ImplKind::OrwlBind => "orwl-bind",
            ImplKind::OrwlNoBind => "orwl-nobind",
            ImplKind::OpenMp => "openmp",
        }
    }
}

/// Builds the execution scenario of an implementation for `workload` on
/// `machine`.
pub fn build_scenario(
    machine: &SimMachine,
    workload: &Lk23Workload,
    kind: ImplKind,
    seed: u64,
) -> ExecutionScenario {
    let n_tasks = workload.n_tasks();
    match kind {
        ImplKind::OrwlBind => {
            // The same Algorithm 1 the real runtime uses, with one control
            // thread accounted for.
            let mapper = TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(1) });
            let placement = mapper.compute_placement(machine.topology(), &workload.comm_matrix());
            let pus = machine.topology().pu_os_indices();
            let task_pu = placement.compute_mapping_with(|t| pus[t % pus.len()]);
            ExecutionScenario::bound(machine, task_pu).with_label(kind.label())
        }
        ImplKind::OrwlNoBind => {
            ExecutionScenario::orwl_nobind(machine, n_tasks, seed).with_label(kind.label())
        }
        ImplKind::OpenMp => ExecutionScenario::openmp_static(machine, n_tasks).with_label(kind.label()),
    }
}

/// Simulates one implementation of the workload and returns the report.
pub fn simulate_implementation(
    machine: &SimMachine,
    workload: &Lk23Workload,
    kind: ImplKind,
    seed: u64,
) -> SimReport {
    let graph = workload.task_graph();
    let scenario = build_scenario(machine, workload, kind, seed);
    simulate(machine, &graph, &scenario, workload.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_numasim::costmodel::CostParams;
    use orwl_topo::synthetic;

    #[test]
    fn near_square_factors_examples() {
        assert_eq!(near_square_factors(192), (12, 16));
        assert_eq!(near_square_factors(64), (8, 8));
        assert_eq!(near_square_factors(8), (2, 4));
        assert_eq!(near_square_factors(7), (1, 7));
        assert_eq!(near_square_factors(1), (1, 1));
    }

    #[test]
    fn paper_workload_shape() {
        let w = Lk23Workload::paper_for_cores(192);
        assert_eq!(w.matrix_size, 16384);
        assert_eq!(w.iterations, 100);
        assert_eq!(w.n_tasks(), 192);
        assert_eq!(w.comm_matrix().order(), 192);
        let g = w.task_graph();
        assert_eq!(g.n_tasks(), 192);
        // Total elements processed per iteration equals the full matrix.
        let total: f64 = (0..g.n_tasks()).map(|t| g.task(t).elements).sum();
        assert_eq!(total, (16384u64 * 16384) as f64);
    }

    #[test]
    fn implementations_have_distinct_labels() {
        let labels: std::collections::HashSet<&str> = ImplKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn scenarios_differ_as_expected() {
        let machine = SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::cluster2016());
        let w = Lk23Workload::new(1024, 4, 8, 10);
        let bind = build_scenario(&machine, &w, ImplKind::OrwlBind, 1);
        let nobind = build_scenario(&machine, &w, ImplKind::OrwlNoBind, 1);
        let openmp = build_scenario(&machine, &w, ImplKind::OpenMp, 1);
        assert!(!bind.migrating && !bind.fork_join_barrier);
        assert!(nobind.migrating && !nobind.fork_join_barrier);
        assert!(openmp.migrating && openmp.fork_join_barrier);
        assert_eq!(bind.remote_data_fraction(&machine), 0.0);
        assert!(openmp.remote_data_fraction(&machine) > 0.5);
    }

    #[test]
    fn figure1_ordering_holds_on_a_small_machine() {
        // Even on a 4-socket subset the qualitative result of Figure 1 must
        // hold: Bind < NoBind < OpenMP.
        let machine = SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::cluster2016());
        let w = Lk23Workload::new(4096, 4, 8, 10);
        let t_bind = simulate_implementation(&machine, &w, ImplKind::OrwlBind, 3).total_time;
        let t_nobind = simulate_implementation(&machine, &w, ImplKind::OrwlNoBind, 3).total_time;
        let t_openmp = simulate_implementation(&machine, &w, ImplKind::OpenMp, 3).total_time;
        assert!(t_bind < t_nobind, "bind {t_bind} vs nobind {t_nobind}");
        assert!(t_nobind < t_openmp, "nobind {t_nobind} vs openmp {t_openmp}");
    }

    #[test]
    fn bind_scales_with_sockets_but_openmp_does_not() {
        // The paper's key observation: beyond one or two sockets the
        // non-topology-aware versions stop improving.
        let w2 = Lk23Workload::new(16384, 4, 4, 5); // 16 tasks on 16 cores
        let w24 = Lk23Workload::new(16384, 12, 16, 5); // 192 tasks on 192 cores
        let m2 = SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016());
        let m24 = SimMachine::new(synthetic::cluster2016_subset(24).unwrap(), CostParams::cluster2016());
        let bind_2 = simulate_implementation(&m2, &w2, ImplKind::OrwlBind, 1).total_time;
        let bind_24 = simulate_implementation(&m24, &w24, ImplKind::OrwlBind, 1).total_time;
        let omp_2 = simulate_implementation(&m2, &w2, ImplKind::OpenMp, 1).total_time;
        let omp_24 = simulate_implementation(&m24, &w24, ImplKind::OpenMp, 1).total_time;
        // Bind gains substantially from 12x more cores.
        assert!(bind_24 < bind_2 * 0.2, "bind: {bind_2} -> {bind_24}");
        // OpenMP gains far less (interconnect and remote-memory bound).
        let bind_gain = bind_2 / bind_24;
        let omp_gain = omp_2 / omp_24;
        assert!(bind_gain > omp_gain * 1.5, "bind gain {bind_gain} vs openmp gain {omp_gain}");
    }
}
