//! The ORWL implementation of the Livermore Kernel 23.
//!
//! Exactly as §III of the paper describes, the matrix is decomposed into
//! blocks; every block owns a *main* location (its state) and one frontier
//! location per existing neighbour (its edges and corners).  Block tasks
//! iterate: export the current frontiers, import the neighbours' frontiers
//! into the ghost ring, update the block.  Read/write dependencies between
//! blocks are expressed exclusively through ORWL handles, and the initial
//! request order (owner writes before neighbour reads, posted during a
//! deterministic initialisation phase) yields the periodic, deadlock-free
//! schedule characteristic of the model.
//!
//! The numerical result is identical to the sequential Jacobi reference,
//! whatever placement policy the runtime applies — locality only changes
//! *where* threads run, never what they compute.

use crate::blocks::{BlockDecomposition, BlockView, Direction};
use crate::kernel::Grid;
use orwl_core::prelude::*;
use orwl_core::Location;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything needed to run the ORWL LK23 program and collect its result.
pub struct Lk23OrwlProgram {
    /// The ORWL program (tasks + links), ready to hand to the runtime.
    pub program: OrwlProgram,
    /// The main location of every block, holding its final state after the
    /// run; indexed by block id.
    pub result_blocks: Vec<Arc<Location<BlockView>>>,
    /// The decomposition geometry.
    pub decomposition: BlockDecomposition,
}

/// Builds the ORWL program computing `iterations` LK23 sweeps of `initial`
/// under the given block decomposition.
pub fn build_program(
    initial: &Grid,
    decomposition: BlockDecomposition,
    iterations: usize,
) -> Lk23OrwlProgram {
    let grid_rows = initial.rows();
    let grid_cols = initial.cols();
    let n_blocks = decomposition.n_blocks();
    let elem = std::mem::size_of::<f64>() as f64;

    // Block views (the tasks' working state) and their main locations.
    let views: Vec<BlockView> = (0..n_blocks)
        .map(|idx| {
            let (bi, bj) = decomposition.block_coords(idx);
            BlockView::from_grid(initial, decomposition.row_range(bi), decomposition.col_range(bj))
        })
        .collect();
    let result_blocks: Vec<Arc<Location<BlockView>>> = views
        .iter()
        .enumerate()
        .map(|(idx, v)| Location::new(format!("block-{idx}-main"), v.clone()))
        .collect();

    // Frontier locations: one per (block, existing neighbour direction),
    // initialised with the block's initial edge so that the very first read
    // of a neighbour observes iteration-0 data.
    let mut frontiers: Vec<HashMap<Direction, Arc<Location<Vec<f64>>>>> = Vec::with_capacity(n_blocks);
    for (idx, view) in views.iter().enumerate() {
        let mut per_dir = HashMap::new();
        for dir in Direction::all() {
            if decomposition.neighbor(idx, dir).is_some() {
                per_dir.insert(dir, Location::new(format!("block-{idx}-frontier-{dir:?}"), view.edge(dir)));
            }
        }
        frontiers.push(per_dir);
    }

    // Deterministic initialisation phase (the ORWL model's "init" step):
    // post every owner's write request first, then every neighbour's read
    // request, so the per-location schedule alternates write → read.
    let mut write_handles: Vec<HashMap<Direction, Handle<Vec<f64>>>> = Vec::with_capacity(n_blocks);
    for block_frontiers in frontiers.iter().take(n_blocks) {
        let mut per_dir = HashMap::new();
        for (&dir, loc) in block_frontiers {
            let mut h = loc.iterative_handle(AccessMode::Write);
            h.request().expect("fresh handle has no pending request");
            per_dir.insert(dir, h);
        }
        write_handles.push(per_dir);
    }
    let mut read_handles: Vec<HashMap<Direction, Handle<Vec<f64>>>> = Vec::with_capacity(n_blocks);
    for idx in 0..n_blocks {
        let mut per_dir = HashMap::new();
        for dir in Direction::all() {
            if let Some(nb) = decomposition.neighbor(idx, dir) {
                let loc = &frontiers[nb][&dir.opposite()];
                let mut h = loc.iterative_handle(AccessMode::Read);
                h.request().expect("fresh handle has no pending request");
                per_dir.insert(dir, h);
            }
        }
        read_handles.push(per_dir);
    }

    // Assemble the program: one task per block.
    let mut program = OrwlProgram::new();
    let mut write_iter = write_handles.into_iter();
    let mut read_iter = read_handles.into_iter();
    for (idx, view) in views.into_iter().enumerate() {
        let my_writes = write_iter.next().expect("one write-handle map per block");
        let my_reads = read_iter.next().expect("one read-handle map per block");
        let main_loc = Arc::clone(&result_blocks[idx]);

        // Declared links: the communication matrix the placement add-on
        // extracts.  Frontier writes/reads carry the halo volumes; the main
        // location carries the block's private working set.
        let mut links = vec![LocationLink::write(main_loc.id(), (view.rows * view.cols) as f64 * elem)];
        for &dir in my_writes.keys() {
            links.push(LocationLink::write(frontiers[idx][&dir].id(), view.edge_bytes(dir)));
        }
        for (&dir, h) in &my_reads {
            links.push(LocationLink::read(h.location().id(), view.edge_bytes(dir)));
        }

        program.add_task(TaskSpec::new(format!("lk23-block-{idx}"), links), move |_ctx| {
            run_block_task(view, my_writes, my_reads, main_loc, iterations, grid_rows, grid_cols);
        });
    }

    Lk23OrwlProgram { program, result_blocks, decomposition }
}

/// The body of one block task.
fn run_block_task(
    mut cur: BlockView,
    mut write_handles: HashMap<Direction, Handle<Vec<f64>>>,
    mut read_handles: HashMap<Direction, Handle<Vec<f64>>>,
    main_loc: Arc<Location<BlockView>>,
    iterations: usize,
    grid_rows: usize,
    grid_cols: usize,
) {
    let mut next = cur.clone();
    for _iter in 0..iterations {
        // 1. Export the current frontiers (state of this iteration).
        for (&dir, handle) in write_handles.iter_mut() {
            let mut guard = handle.acquire().expect("iterative write handle always has a request");
            *guard = cur.edge(dir);
        }
        // 2. Import the neighbours' frontiers into the ghost ring.
        for (&dir, handle) in read_handles.iter_mut() {
            let guard = handle.acquire().expect("iterative read handle always has a request");
            cur.set_ghost(dir, &guard);
        }
        // 3. Compute the next state.
        cur.update_into(&mut next, grid_rows, grid_cols);
        std::mem::swap(&mut cur, &mut next);
    }
    // Publish the final block state through the main location.
    let mut h = main_loc.handle(AccessMode::Write);
    h.request().expect("fresh handle");
    let mut guard = h.acquire().expect("single writer on the main location");
    *guard = cur;
}

/// Runs the ORWL LK23 program through the given [`Session`] and returns
/// the assembled result grid together with the unified run report.
pub fn run_orwl(
    initial: &Grid,
    decomposition: BlockDecomposition,
    iterations: usize,
    session: &Session,
) -> Result<(Grid, Report), OrwlError> {
    let built = build_program(initial, decomposition, iterations);
    let report = session.run(built.program)?;
    let mut result = Grid::zeros(initial.rows(), initial.cols());
    for loc in &built.result_blocks {
        loc.snapshot().write_back(&mut result);
    }
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::reference_jacobi;
    use orwl_topo::synthetic;

    fn initial(n: usize) -> Grid {
        Grid::initial(n, n)
    }

    fn nobind_session(topo: orwl_topo::topology::Topology) -> Session {
        Session::builder().topology(topo).policy(Policy::NoBind).backend(ThreadBackend).build().unwrap()
    }

    #[test]
    fn program_declares_one_task_per_block_with_links() {
        let g = initial(16);
        let d = BlockDecomposition::new(16, 16, 2, 2).unwrap();
        let built = build_program(&g, d, 3);
        assert_eq!(built.program.n_tasks(), 4);
        // The extracted communication matrix equals the geometric one.
        let m = built.program.comm_matrix();
        assert_eq!(m, d.comm_matrix(8));
        // Every block has a main location.
        assert_eq!(built.result_blocks.len(), 4);
    }

    #[test]
    fn orwl_nobind_matches_sequential_reference() {
        let g = initial(24);
        let d = BlockDecomposition::new(24, 24, 2, 3).unwrap();
        let session = nobind_session(synthetic::laptop());
        let (result, report) = run_orwl(&g, d, 4, &session).unwrap();
        let reference = reference_jacobi(&g, 4);
        assert_eq!(result.max_abs_diff(&reference), 0.0);
        assert_eq!(report.thread.unwrap().stats.tasks_finished, 6);
    }

    #[test]
    fn orwl_bind_with_recording_binder_matches_reference_and_binds() {
        let g = initial(32);
        let d = BlockDecomposition::new(32, 32, 4, 2).unwrap();
        let binder = Arc::new(orwl_topo::binding::RecordingBinder::new());
        let session = Session::builder()
            .topology(synthetic::cluster2016_subset(1).unwrap())
            .binder(binder.clone())
            .backend(ThreadBackend)
            .build()
            .unwrap();
        let (result, report) = run_orwl(&g, d, 3, &session).unwrap();
        let reference = reference_jacobi(&g, 3);
        assert_eq!(result.max_abs_diff(&reference), 0.0);
        // The TreeMatch placement bound every block task.
        assert!(report.plan.placement.bound_fraction() > 0.99);
        assert!(!binder.anonymous_bindings().is_empty());
    }

    #[test]
    fn single_block_degenerates_to_sequential() {
        let g = initial(12);
        let d = BlockDecomposition::new(12, 12, 1, 1).unwrap();
        let session = nobind_session(synthetic::uniprocessor());
        let (result, _) = run_orwl(&g, d, 5, &session).unwrap();
        assert_eq!(result.max_abs_diff(&reference_jacobi(&g, 5)), 0.0);
    }

    #[test]
    fn zero_iterations_returns_initial_grid() {
        let g = initial(16);
        let d = BlockDecomposition::new(16, 16, 2, 2).unwrap();
        let session = nobind_session(synthetic::laptop());
        let (result, _) = run_orwl(&g, d, 0, &session).unwrap();
        assert_eq!(result.max_abs_diff(&g), 0.0);
    }

    #[test]
    fn many_blocks_oversubscribed_still_correct() {
        // 16 block tasks on a single simulated core: heavy oversubscription,
        // the FIFO schedule must still be deadlock-free and correct.
        let g = initial(32);
        let d = BlockDecomposition::new(32, 32, 4, 4).unwrap();
        let session = nobind_session(synthetic::uniprocessor());
        let (result, _) = run_orwl(&g, d, 3, &session).unwrap();
        assert_eq!(result.max_abs_diff(&reference_jacobi(&g, 3)), 0.0);
    }
}
