//! Acceptance pin: the lab pipeline is deterministic end to end — the same
//! grid with the same seed produces byte-identical JSON artifacts, and the
//! smoke grid (what CI ships as `BENCH_lab.json`) validates against the
//! schema while covering every scenario family on all three backends.

use orwl_lab::report::{render_table, sweep_to_json, validate};
use orwl_lab::scenario::ScenarioSpec;
use orwl_lab::sweep::{run_sweep, BackendSpec, ModeKind, SweepConfig, SweepSection};
use orwl_treematch::policies::Policy;

/// A grid small enough to run twice in a test, but spanning the thread
/// backend (real threads!), the NUMA simulator and the cluster simulator.
fn cross_backend_grid(seed: u64) -> SweepConfig {
    SweepConfig {
        seed,
        epoch_iterations: 4,
        thread_iterations: 1,
        sections: vec![SweepSection {
            label: "determinism",
            scenarios: ScenarioSpec::catalog(9, seed)
                .into_iter()
                .map(|s| s.with_phases(vec![6, 6]))
                .collect(),
            backends: vec![
                BackendSpec::Threads,
                BackendSpec::NumaSim { sockets: 2 },
                BackendSpec::Cluster { nodes: 2, oversubscription: 1 },
            ],
            policies: vec![Policy::TreeMatch, Policy::Scatter],
            modes: vec![ModeKind::Static],
        }],
    }
}

#[test]
fn identical_seeds_produce_byte_identical_artifacts() {
    let first = run_sweep(&cross_backend_grid(42)).unwrap();
    let second = run_sweep(&cross_backend_grid(42)).unwrap();
    let (a, b) = (sweep_to_json(&first).pretty(), sweep_to_json(&second).pretty());
    assert_eq!(a, b, "two identical sweeps must serialise to identical bytes");
    // A different seed produces a different (but equally valid) artifact.
    let other = run_sweep(&cross_backend_grid(43)).unwrap();
    let c = sweep_to_json(&other).pretty();
    assert_ne!(a, c);
    validate(&orwl_core::json::Json::parse(&c).unwrap()).unwrap();
}

#[test]
fn cross_backend_grid_validates_and_covers_the_catalog() {
    let result = run_sweep(&cross_backend_grid(42)).unwrap();
    let doc = sweep_to_json(&result);
    validate(&doc).unwrap();

    // Every family appears on every backend.
    let families: Vec<&str> =
        doc.get("families").unwrap().as_arr().unwrap().iter().filter_map(|f| f.as_str()).collect();
    assert!(families.len() >= 6, "at least six families: {families:?}");
    let backends: Vec<&str> =
        doc.get("backends").unwrap().as_arr().unwrap().iter().filter_map(|b| b.as_str()).collect();
    assert_eq!(backends, vec!["threads", "numasim", "cluster"]);
    for family in &families {
        for backend in &backends {
            assert!(
                result.rows.iter().any(|r| &r.family == family && &r.backend == backend),
                "family {family} missing on backend {backend}"
            );
        }
    }

    // Thread rows never leak wall time; cluster rows always carry fabric.
    for row in &result.rows {
        match row.backend {
            "threads" => assert!(row.sim_seconds.is_none()),
            _ => assert!(row.sim_seconds.is_some()),
        }
        assert_eq!(row.backend == "cluster", row.inter_node_hop_bytes.is_some());
        // Baseline ratios anchor every row.
        assert!(row.vs_scatter.unwrap() > 0.0);
        assert!(row.vs_flat_treematch.unwrap() > 0.0);
    }

    // The human table mentions every scenario of the grid.
    let table = render_table(&result);
    for row in &result.rows {
        assert!(table.contains(&row.scenario), "table misses {}", row.scenario);
    }
}
