//! Satellite pin: the ROADMAP's rack-aware oversubscription sweep, as a
//! built-in lab grid — and the guarantee that `Policy::Hierarchical` never
//! loses to `Policy::Scatter` on inter-node hop-bytes when tasks
//! outnumber PUs.

use orwl_lab::sweep::{run_sweep, SweepConfig};

#[test]
fn hierarchical_never_loses_to_scatter_on_fabric_traffic_under_oversubscription() {
    let section = SweepConfig::oversubscription_section(42, 2, &[1, 2, 4]);
    let config = SweepConfig { seed: 42, epoch_iterations: 4, thread_iterations: 1, sections: vec![section] };
    let result = run_sweep(&config).unwrap();

    for factor in [1usize, 2, 4] {
        let rows: Vec<_> =
            result.section("oversubscription").filter(|r| r.oversubscription == Some(factor)).collect();
        let hier = rows.iter().find(|r| r.policy == "hierarchical").expect("hierarchical row");
        let scatter = rows.iter().find(|r| r.policy == "scatter").expect("scatter row");
        // Oversubscribed factors genuinely exceed the PU count.
        if factor > 1 {
            assert!(hier.tasks > 2 * 16, "factor {factor} must oversubscribe: {} tasks", hier.tasks);
        }
        let (h, s) = (
            hier.inter_node_hop_bytes.expect("cluster rows carry fabric hop-bytes"),
            scatter.inter_node_hop_bytes.expect("cluster rows carry fabric hop-bytes"),
        );
        assert!(
            h <= s,
            "factor {factor}: hierarchical inter-node hop-bytes {h} must not exceed scatter's {s}"
        );
        // It does not lose to flat TreeMatch on the fabric metric either:
        // the weighted-cut benchmark inside `hierarchical_placement` is
        // exactly what keeps node-crossing traffic down.  (Total hop-bytes
        // may trade up to a few percent against flat TreeMatch — fabric
        // bytes are bought with slightly longer intra-node paths — so the
        // total is deliberately *not* pinned here.)
        let tm = rows
            .iter()
            .find(|r| r.policy == "treematch")
            .and_then(|r| r.inter_node_hop_bytes)
            .expect("flat treematch baseline row");
        assert!(
            h <= tm + 1e-6,
            "factor {factor}: hierarchical inter-node hop-bytes {h} exceed flat TreeMatch's {tm}"
        );
    }
}
