//! Adaptive evaluation over the `DriftMix` and `Hotspot` scenario families,
//! cross-checked against the run's own telemetry: every counter in
//! [`AdaptReport`] must have a matching event stream in the `orwl-obs/v1`
//! timeline, or one of the two is lying.

use orwl_adapt::backend::SimBackend;
use orwl_adapt::engine::AdaptConfig;
use orwl_core::runtime::AdaptiveSpec;
use orwl_core::session::{Mode, Report, Session};
use orwl_lab::scenario::{ScenarioFamily, ScenarioSpec};
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_obs::{ClockKind, DriftOutcome, EventKind, ObsConfig};
use orwl_treematch::policies::Policy;

fn machine() -> SimMachine {
    SimMachine::new(orwl_topo::synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
}

fn adaptive_run(family: ScenarioFamily, seed: u64) -> Report {
    let spec = ScenarioSpec::new(family, 16, seed);
    Session::builder()
        .topology(machine().topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .mode(Mode::Adaptive(AdaptiveSpec::per_iterations(4)))
        .backend(SimBackend::new(machine()).with_adapt_config(AdaptConfig::evaluation()))
        .observe(ObsConfig::default())
        .build()
        .unwrap()
        .run(spec.workload())
        .unwrap()
}

fn outcome_of(ev: &orwl_obs::ObsEvent) -> Option<DriftOutcome> {
    match ev.kind {
        EventKind::DriftDecision { outcome, .. } => Some(outcome),
        _ => None,
    }
}

#[test]
fn drift_events_match_adapt_counters_across_families() {
    for family in [ScenarioFamily::DriftMix, ScenarioFamily::Hotspot] {
        let report = adaptive_run(family, 42);
        let adapt = report.adapt.as_ref().expect("adaptive runs report counters");
        let obs = report.obs.as_ref().expect("observed runs carry telemetry");

        assert_eq!(obs.backend, "numasim");
        assert_eq!(obs.clock, ClockKind::Simulated);
        assert_eq!(obs.dropped, 0, "{family:?}: the default ring must not overflow here");

        // One epoch event per monitoring epoch, one drift decision per
        // recorded delta (warm-up epochs observe nothing), one migration
        // event per accepted re-placement.
        assert_eq!(obs.count_kind("epoch") as u64, adapt.epochs, "{family:?}");
        assert_eq!(obs.count_kind("drift_decision"), adapt.drift_deltas.len(), "{family:?}");
        assert_eq!(obs.count_kind("migration") as u64, adapt.replacements, "{family:?}");

        // Fired decisions bound migrations from above: the replacer may
        // decline a fire, but never migrates without one.
        let fired = obs.events.iter().filter(|e| outcome_of(e) == Some(DriftOutcome::Fired)).count() as u64;
        assert!(fired >= adapt.replacements, "{family:?}: {fired} fires < {} migrations", adapt.replacements);
        // Counters are sparse: never-incremented is reported as absent.
        assert_eq!(obs.metrics.counter("drift_fired").unwrap_or(0), fired, "{family:?}");

        // The deltas in the timeline are the deltas in the report, in order.
        let event_deltas: Vec<f64> = obs
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::DriftDecision { delta, .. } => Some(delta),
                _ => None,
            })
            .collect();
        assert_eq!(event_deltas, adapt.drift_deltas, "{family:?}");

        // Simulated timestamps are monotone along the sorted timeline.
        let mut last = 0.0f64;
        for ev in &obs.events {
            assert!(ev.ts_us >= last, "{family:?}: timestamp regressed: {} < {last}", ev.ts_us);
            last = ev.ts_us;
        }
    }
}

#[test]
fn drift_mix_fires_and_hotspot_structure_is_visible() {
    // DriftMix rotates the stencil mid-run: the detector must fire at least
    // once and the timeline must show the migration paying real bytes.
    let report = adaptive_run(ScenarioFamily::DriftMix, 42);
    let adapt = report.adapt.as_ref().unwrap();
    let obs = report.obs.as_ref().unwrap();
    assert!(adapt.replacements >= 1, "DriftMix must trigger a migration: {adapt:?}");
    let migration_bytes: f64 = obs
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Migration { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert!(migration_bytes > 0.0, "migrations must move state");

    // Hotspot keeps one dominant communicator: with a stationary structure
    // the quiet outcome dominates the timeline.
    let hotspot = adaptive_run(ScenarioFamily::Hotspot, 42);
    let hobs = hotspot.obs.as_ref().unwrap();
    let quiet = hobs
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DriftDecision { outcome: DriftOutcome::Quiet, .. }))
        .count();
    assert_eq!(Some(quiet as u64), hobs.metrics.counter("drift_quiet"));
}

#[test]
fn unobserved_runs_report_identical_results() {
    // Observation is read-only: the same session without `.observe` must
    // produce bit-identical metrics (the gate only adds passive recording).
    for family in [ScenarioFamily::DriftMix, ScenarioFamily::Hotspot] {
        let spec = ScenarioSpec::new(family, 16, 7);
        let base = Session::builder()
            .topology(machine().topology().clone())
            .policy(Policy::TreeMatch)
            .control_threads(0)
            .mode(Mode::Adaptive(AdaptiveSpec::per_iterations(4)))
            .backend(SimBackend::new(machine()).with_adapt_config(AdaptConfig::evaluation()))
            .build()
            .unwrap()
            .run(spec.workload())
            .unwrap();
        let observed = adaptive_run(family, 7);
        assert!(base.obs.is_none(), "unobserved runs carry no telemetry");
        assert_eq!(base.hop_bytes, observed.hop_bytes, "{family:?}");
        assert_eq!(base.time.seconds(), observed.time.seconds(), "{family:?}");
        assert_eq!(base.adapt, observed.adapt, "{family:?}");
    }
}
