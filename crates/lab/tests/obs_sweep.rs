//! Observed sweeps: `run_sweep_observed` must (a) leave the rows
//! byte-identical to an unobserved parallel sweep — observation is
//! read-only — and (b) attach one schema-valid `orwl-obs/v1` telemetry
//! artifact per cell under a unique filesystem-safe label.

use orwl_lab::scenario::{ScenarioFamily, ScenarioSpec};
use orwl_lab::sweep::{
    run_sweep_observed, run_sweep_with_threads, BackendSpec, ModeKind, SweepConfig, SweepSection,
};
use orwl_obs::export::{validate_chrome_trace, validate_obs};
use orwl_obs::{ObsConfig, ToJson};
use orwl_treematch::policies::Policy;
use std::collections::HashSet;

fn tiny_grid(seed: u64) -> SweepConfig {
    SweepConfig {
        seed,
        epoch_iterations: 4,
        thread_iterations: 2,
        sections: vec![SweepSection {
            label: "families",
            scenarios: vec![
                ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, seed),
                ScenarioSpec::new(ScenarioFamily::Hotspot, 16, seed),
            ],
            backends: vec![
                BackendSpec::Threads,
                BackendSpec::NumaSim { sockets: 2 },
                BackendSpec::Cluster { nodes: 2, oversubscription: 1 },
            ],
            policies: vec![Policy::TreeMatch, Policy::Scatter],
            modes: vec![ModeKind::Static, ModeKind::Adaptive],
        }],
    }
}

#[test]
fn observed_sweep_rows_match_unobserved_and_artifacts_validate() {
    let config = tiny_grid(42);
    let (observed_result, cells) =
        run_sweep_observed(&config, ObsConfig::default()).expect("the observed tiny grid runs");
    let plain = run_sweep_with_threads(&config, 4).expect("the unobserved tiny grid runs");

    // Observation is read-only: same rows, same order, same values —
    // even against a parallel unobserved sweep.
    assert_eq!(observed_result.rows, plain.rows);
    assert!(!observed_result.rows.is_empty());

    // Every executed cell produced telemetry, under a unique label safe to
    // use as a file stem.
    assert_eq!(cells.len(), observed_result.rows.len(), "one telemetry per cell");
    let labels: HashSet<&str> = cells.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels.len(), cells.len(), "labels must be unique");
    for cell in &cells {
        assert!(
            cell.label.chars().all(|c| matches!(c, 'a'..='z' | '0'..='9' | '.' | '_' | '-')),
            "label {:?} is not filesystem-safe",
            cell.label
        );
        validate_obs(&cell.telemetry.to_json())
            .unwrap_or_else(|e| panic!("{}: invalid orwl-obs/v1 artifact: {e}", cell.label));
        validate_chrome_trace(&cell.telemetry.chrome_trace())
            .unwrap_or_else(|e| panic!("{}: invalid Chrome trace: {e}", cell.label));
        assert_eq!(cell.telemetry.dropped, 0, "{}: tiny cells must not overflow the ring", cell.label);
    }

    // The backend axis survives into the telemetry, and simulated cells
    // carry events (threads cells may only carry metrics).
    let backends: HashSet<&str> = cells.iter().map(|c| c.telemetry.backend.as_str()).collect();
    assert!(backends.contains("numasim") && backends.contains("cluster"), "{backends:?}");
    for cell in cells.iter().filter(|c| c.telemetry.backend != "threads") {
        assert!(!cell.telemetry.events.is_empty(), "{}: simulated cells emit events", cell.label);
        assert!(cell.telemetry.count_kind("epoch") > 0, "{}: every sim run has epochs", cell.label);
    }
}
