//! Satellite pin: `DriftDetector` patience/cooldown boundary behaviour,
//! driven by a **captured lab trace** instead of hand-built matrices — the
//! detector sees exactly the epoch timeline a monitored run produced.
//!
//! The rotated-stencil scenario (phases 12 + 28, epochs of 4) captures to
//! ten epochs: three of the east-west sweep, then seven of the rotated
//! north-south sweep.  Drift therefore first appears at epoch index 3,
//! which makes the boundary arithmetic exact:
//!
//! * patience `p` ⇒ the detector fires at epoch `3 + p - 1` and not one
//!   epoch earlier;
//! * cooldown `c` ⇒ after a fire, the next `c` epochs never fire and do
//!   not accumulate patience, so the next fire lands at `fire + c + p`.

use orwl_adapt::drift::{DriftConfig, DriftDetector};
use orwl_comm::matrix::CommMatrix;
use orwl_lab::scenario::{ScenarioFamily, ScenarioSpec};
use orwl_lab::trace::{capture_trace, Trace};
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_topo::topology::Topology;
use orwl_treematch::policies::{compute_placement, Policy};

const FIRST_DRIFTED_EPOCH: usize = 3; // 12 iterations of phase A in epochs of 4

struct Replay {
    topo: Topology,
    mapping: Vec<usize>,
    baseline: CommMatrix,
    epochs: Vec<CommMatrix>,
}

/// Captures the canonical drifting scenario and prepares the epoch
/// timeline the detector replays.
fn replayed() -> Replay {
    let machine =
        SimMachine::new(orwl_topo::synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016());
    let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42).with_phases(vec![12, 28]);
    let trace: Trace = capture_trace(&machine, Policy::TreeMatch, &spec.workload(), 4);
    assert_eq!(trace.epochs.len(), 10, "12+28 iterations in epochs of 4");

    let topo = machine.topology().clone();
    let baseline = trace.epochs[0].mean_matrix().symmetrized();
    let placement = compute_placement(Policy::TreeMatch, &topo, &baseline, 0);
    let mapping = placement.compute_mapping_or_zero();
    let epochs = trace.epochs.iter().map(|e| e.mean_matrix().symmetrized()).collect();
    Replay { topo, mapping, baseline, epochs }
}

/// Runs the detector over the replayed timeline, returning the epoch
/// indices at which it fired.
fn fires(replay: &Replay, config: DriftConfig) -> Vec<usize> {
    let mut detector = DriftDetector::new(config);
    replay
        .epochs
        .iter()
        .enumerate()
        .filter_map(|(k, live)| {
            detector.observe(&replay.topo, &replay.mapping, &replay.baseline, live).fired.then_some(k)
        })
        .collect()
}

#[test]
fn detector_fires_exactly_at_patience_not_one_epoch_earlier() {
    let replay = replayed();
    for patience in 1..=3 {
        let config = DriftConfig { threshold: 0.15, patience, cooldown: 100 };
        let fired = fires(&replay, config);
        assert_eq!(
            fired.first().copied(),
            Some(FIRST_DRIFTED_EPOCH + patience - 1),
            "patience {patience}: fire epochs {fired:?}"
        );
        // The large cooldown guarantees exactly one fire in this window.
        assert_eq!(fired.len(), 1, "patience {patience}: {fired:?}");
    }
    // Patience longer than the remaining drifted epochs never fires.
    let too_patient = DriftConfig { threshold: 0.15, patience: 8, cooldown: 0 };
    assert!(fires(&replay, too_patient).is_empty());
}

#[test]
fn cooldown_window_is_respected_to_the_epoch() {
    let replay = replayed();
    // patience 2, cooldown 3: first fire at epoch 4; epochs 5-7 are the
    // cooldown window (no patience accumulation); 8 and 9 re-accumulate;
    // second fire lands exactly at epoch 9 = 4 + 3 + 2.
    let config = DriftConfig { threshold: 0.15, patience: 2, cooldown: 3 };
    assert_eq!(fires(&replay, config), vec![4, 9]);

    // Zero cooldown: patience resets on fire but drift persists, so the
    // detector re-fires every `patience` epochs until the trace ends.
    let config = DriftConfig { threshold: 0.15, patience: 2, cooldown: 0 };
    assert_eq!(fires(&replay, config), vec![4, 6, 8]);

    // Cooldown 1 delays each subsequent fire by exactly one epoch.
    let config = DriftConfig { threshold: 0.15, patience: 1, cooldown: 1 };
    assert_eq!(fires(&replay, config), vec![3, 5, 7, 9]);
}

#[test]
fn stationary_epochs_of_the_trace_never_fire() {
    let replay = replayed();
    // Only the first (undrifted) epochs, repeated: no fire at any patience.
    let stationary = Replay {
        topo: replay.topo.clone(),
        mapping: replay.mapping.clone(),
        baseline: replay.baseline.clone(),
        epochs: vec![replay.epochs[0].clone(); 8],
    };
    for patience in 1..=3 {
        let config = DriftConfig { threshold: 0.15, patience, cooldown: 0 };
        assert!(fires(&stationary, config).is_empty(), "patience {patience}");
    }
}
