//! Acceptance pin for the parallel sweep runner: fanning the grid's cells
//! over a worker pool must not change a single byte of the artifact —
//! rows are assembled by planned cell index, so order and values are
//! scheduling-independent.  This is the property that lets `run_sweep`
//! default to multi-core while `BENCH_lab.json` stays `cmp`-checked in CI.

use orwl_lab::report::{sweep_to_json, validate};
use orwl_lab::scenario::ScenarioSpec;
use orwl_lab::sweep::{
    default_sweep_threads, run_sweep_with_threads, BackendSpec, ModeKind, SweepConfig, SweepSection,
};
use orwl_treematch::policies::Policy;

/// A grid spanning all three backends, both simulator modes and the
/// baseline-appending path — small enough to run three times in a test.
fn grid(seed: u64) -> SweepConfig {
    SweepConfig {
        seed,
        epoch_iterations: 4,
        thread_iterations: 1,
        sections: vec![SweepSection {
            label: "parallel",
            scenarios: ScenarioSpec::catalog(9, seed).into_iter().take(4).collect(),
            backends: vec![
                BackendSpec::Threads,
                BackendSpec::NumaSim { sockets: 2 },
                BackendSpec::Cluster { nodes: 2, oversubscription: 1 },
            ],
            policies: vec![Policy::Hierarchical],
            modes: vec![ModeKind::Static, ModeKind::Adaptive],
        }],
    }
}

#[test]
fn parallel_and_sequential_sweeps_are_byte_identical() {
    let sequential = run_sweep_with_threads(&grid(42), 1).unwrap();
    let parallel = run_sweep_with_threads(&grid(42), 4).unwrap();
    assert_eq!(sequential, parallel, "results must be scheduling-independent");

    let (a, b) = (sweep_to_json(&sequential).pretty(), sweep_to_json(&parallel).pretty());
    assert_eq!(a, b, "artifacts must be byte-identical across worker counts");
    validate(&orwl_core::json::Json::parse(&a).unwrap()).unwrap();

    // An oversubscribed worker pool (more workers than cells) too.
    let storm = run_sweep_with_threads(&grid(42), 64).unwrap();
    assert_eq!(sweep_to_json(&storm).pretty(), a);
}

#[test]
fn worker_count_zero_and_one_mean_sequential() {
    let zero = run_sweep_with_threads(&grid(7), 0).unwrap();
    let one = run_sweep_with_threads(&grid(7), 1).unwrap();
    assert_eq!(zero, one);
    assert!(default_sweep_threads() >= 1);
}

#[test]
fn baseline_ratios_are_anchored_per_group_in_parallel_runs() {
    let result = run_sweep_with_threads(&grid(42), 4).unwrap();
    for row in &result.rows {
        // Every row carries both ratios (the baselines always run), and the
        // baseline rows are their own anchors.
        let vs_scatter = row.vs_scatter.expect("scatter baseline ran in the group");
        assert!(vs_scatter > 0.0 && vs_scatter.is_finite(), "{row:?}");
        assert!(row.vs_flat_treematch.unwrap() > 0.0);
        if row.policy == "scatter" {
            assert!((vs_scatter - 1.0).abs() < 1e-12);
        }
        if row.policy == "treematch" {
            assert!((row.vs_flat_treematch.unwrap() - 1.0).abs() < 1e-12);
        }
    }
}
