//! Acceptance pin: a trace captured from the *cluster* executor replayed
//! through `ClusterBackend` reproduces the originating run's hop-bytes
//! within 1% — the multi-node sibling of `trace_replay.rs`.
//!
//! `simulate_cluster` reports every halo transfer through the same
//! `SimMonitor` hooks as the single-node executor, so the lab recorder
//! captures fabric-crossing traffic exactly like local traffic; the replay
//! runs through the ordinary `Session` front door on the same machine.

use orwl_cluster::{ClusterBackend, ClusterMachine};
use orwl_core::session::{Mode, Session};
use orwl_lab::scenario::{ScenarioFamily, ScenarioSpec};
use orwl_lab::trace::capture_cluster_trace;
use orwl_treematch::policies::Policy;

fn machine() -> ClusterMachine {
    ClusterMachine::paper(4)
}

fn static_session(policy: Policy) -> Session {
    Session::builder()
        .topology(machine().topology().clone())
        .policy(policy)
        .control_threads(0)
        .mode(Mode::Static)
        .backend(ClusterBackend::new(machine()))
        .build()
        .unwrap()
}

#[test]
fn cluster_replay_reproduces_hop_bytes_within_one_percent() {
    for family in [ScenarioFamily::RotatedStencil, ScenarioFamily::Hotspot, ScenarioFamily::PowerLaw] {
        let spec = ScenarioSpec::new(family, 16, 42);
        let workload = spec.workload();

        let original = static_session(Policy::Hierarchical).run(workload.clone()).unwrap();

        let trace = capture_cluster_trace(&machine(), Policy::Hierarchical, &workload, 4);
        assert!(trace.source.starts_with("cluster:"), "provenance label: {}", trace.source);
        let replay = static_session(Policy::Hierarchical).run(trace.to_workload()).unwrap();

        let relative = (replay.hop_bytes - original.hop_bytes).abs() / original.hop_bytes;
        assert!(
            relative < 0.01,
            "{family:?}: replay hop-bytes {} vs original {} ({:.3}% off)",
            replay.hop_bytes,
            original.hop_bytes,
            100.0 * relative
        );

        // The fabric split survives the round trip too: captured traffic
        // re-crosses the same machine boundary when replayed.
        let (of, rf) = (original.fabric.unwrap(), replay.fabric.unwrap());
        let fabric_relative = if of.inter_node_hop_bytes > 0.0 {
            (rf.inter_node_hop_bytes - of.inter_node_hop_bytes).abs() / of.inter_node_hop_bytes
        } else {
            rf.inter_node_hop_bytes
        };
        assert!(
            fabric_relative < 0.01,
            "{family:?}: replay fabric hop-bytes {} vs original {} ({:.3}% off)",
            rf.inter_node_hop_bytes,
            of.inter_node_hop_bytes,
            100.0 * fabric_relative
        );
    }
}

#[test]
fn cluster_capture_round_trips_through_json_and_flat_policies() {
    let spec = ScenarioSpec::new(ScenarioFamily::DriftMix, 16, 5);
    let trace = capture_cluster_trace(&machine(), Policy::Packed, &spec.workload(), 5);
    assert_eq!(trace.n_tasks, 16);
    assert_eq!(trace.total_iterations(), spec.total_iterations());
    assert!(trace.total_bytes() > 0.0);

    let text = trace.to_json().pretty();
    let reloaded = orwl_lab::trace::Trace::from_json(&orwl_core::json::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(reloaded, trace);

    let a = static_session(Policy::Packed).run(trace.to_workload()).unwrap();
    let b = static_session(Policy::Packed).run(reloaded.to_workload()).unwrap();
    assert_eq!(a.hop_bytes, b.hop_bytes);
    assert_eq!(a.time.seconds(), b.time.seconds());
}
