//! Acceptance pin: a captured trace replayed through `SimBackend`
//! reproduces the originating run's total hop-bytes within 1%.
//!
//! The capture path records every halo transfer the simulator actually
//! performed, epoch by epoch; the replay path rebuilds a phased workload
//! from the per-epoch mean matrices and runs it through the ordinary
//! `Session` front door.  If the recorder is honest and the replay
//! faithful, the two runs must agree on the locality metric.

use orwl_adapt::backend::SimBackend;
use orwl_core::session::{Mode, Session};
use orwl_lab::scenario::{ScenarioFamily, ScenarioSpec};
use orwl_lab::trace::capture_trace;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_treematch::policies::Policy;

fn machine() -> SimMachine {
    SimMachine::new(orwl_topo::synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
}

fn static_session(policy: Policy) -> Session {
    Session::builder()
        .topology(machine().topology().clone())
        .policy(policy)
        .control_threads(0)
        .mode(Mode::Static)
        .backend(SimBackend::new(machine()))
        .build()
        .unwrap()
}

#[test]
fn replayed_trace_reproduces_hop_bytes_within_one_percent() {
    for family in [ScenarioFamily::RotatedStencil, ScenarioFamily::Hotspot, ScenarioFamily::PowerLaw] {
        let spec = ScenarioSpec::new(family, 16, 42);
        let workload = spec.workload();

        // The originating run, through the Session front door.
        let original = static_session(Policy::TreeMatch).run(workload.clone()).unwrap();

        // Capture under the same policy and machine, then replay.
        let trace = capture_trace(&machine(), Policy::TreeMatch, &workload, 4);
        let replay = static_session(Policy::TreeMatch).run(trace.to_workload()).unwrap();

        let relative = (replay.hop_bytes - original.hop_bytes).abs() / original.hop_bytes;
        assert!(
            relative < 0.01,
            "{family:?}: replay hop-bytes {} vs original {} ({:.3}% off)",
            replay.hop_bytes,
            original.hop_bytes,
            100.0 * relative
        );
    }
}

#[test]
fn replayed_trace_preserves_the_drift_for_adaptive_evaluation() {
    // The replay is not just byte-faithful in aggregate: the *drift* the
    // rotation creates must survive the round trip, so adaptive policies
    // can be evaluated against captured timelines.
    let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42);
    let trace = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 4);
    let replay = trace.to_workload();
    let first = replay.phases.first().unwrap().graph.comm_matrix();
    let last = replay.phases.last().unwrap().graph.comm_matrix();
    assert_ne!(first, last, "the captured rotation must still be visible after replay");

    // An adaptive run over the replayed trace migrates at the captured
    // phase change, exactly as it would on the synthetic workload.
    let adaptive = Session::builder()
        .topology(machine().topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .mode(Mode::Adaptive(orwl_core::runtime::AdaptiveSpec::per_iterations(4)))
        .backend(SimBackend::new(machine()).with_adapt_config(orwl_adapt::engine::AdaptConfig::evaluation()))
        .build()
        .unwrap()
        .run(replay)
        .unwrap();
    let counters = adaptive.adapt.expect("adaptive runs report counters");
    assert!(counters.replacements >= 1, "captured drift must trigger a migration: {counters:?}");
    let fixed = static_session(Policy::TreeMatch).run(trace.to_workload()).unwrap();
    assert!(
        adaptive.hop_bytes < fixed.hop_bytes,
        "adaptive on the captured trace ({}) must beat static ({})",
        adaptive.hop_bytes,
        fixed.hop_bytes
    );
}

#[test]
fn thread_runtime_lock_grants_capture_into_a_trace() {
    use orwl_core::prelude::*;
    use orwl_lab::trace::AccessTraceRecorder;
    use std::sync::Arc;

    // Three tasks hammer one shared location; every grant goes through the
    // runtime monitor, which the lab recorder is registered on.
    let counter = Location::new("lab-capture-counter", 0u64);
    let mut program = OrwlProgram::new();
    for t in 0..3 {
        let loc = Arc::clone(&counter);
        program.add_task(
            TaskSpec::new(format!("w{t}"), vec![LocationLink::write(counter.id(), 8.0)]),
            move |_| {
                let mut h = loc.iterative_handle(AccessMode::Write);
                for _ in 0..5 {
                    *h.acquire().unwrap() += 1;
                }
            },
        );
    }

    let recorder = Arc::new(AccessTraceRecorder::new(3, 8.0));
    let registration =
        orwl_core::monitor::register_sink(Arc::clone(&recorder) as Arc<dyn orwl_core::AccessSink>);
    let session = Session::builder()
        .topology(orwl_topo::synthetic::laptop())
        .policy(Policy::TreeMatch)
        .binder(Arc::new(orwl_topo::binding::RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .unwrap();
    let _report = session.run(program).unwrap();
    drop(registration);

    let trace = Arc::into_inner(recorder).expect("registration dropped").finish("threads:laptop");
    assert_eq!(counter.snapshot(), 15);
    assert_eq!(trace.n_tasks, 3);
    // 15 grants on one location, handed between three writers: the
    // last-writer attribution must observe cross-task traffic (the exact
    // interleaving is scheduler-dependent, the presence of flow is not).
    assert!(trace.total_bytes() > 0.0, "no cross-task flow recorded");
    assert!(trace.total_bytes() <= 15.0 * 8.0);
    // The captured trace replays like any other workload.
    let replay = trace.to_workload();
    assert_eq!(replay.n_tasks(), 3);
}

#[test]
fn trace_json_survives_a_disk_round_trip_and_replays_identically() {
    let spec = ScenarioSpec::new(ScenarioFamily::DriftMix, 16, 5);
    let trace = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 5);
    let text = trace.to_json().pretty();
    let reloaded = orwl_lab::trace::Trace::from_json(&orwl_core::json::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(reloaded, trace);
    let a = static_session(Policy::TreeMatch).run(trace.to_workload()).unwrap();
    let b = static_session(Policy::TreeMatch).run(reloaded.to_workload()).unwrap();
    assert_eq!(a.hop_bytes, b.hop_bytes);
    assert_eq!(a.time.seconds(), b.time.seconds());
}
