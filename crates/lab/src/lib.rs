//! # orwl-lab — the experiment subsystem
//!
//! The measurement backbone of the workspace: systematic, reproducible
//! experiments over every `Session` backend, in three layers —
//!
//! 1. **[`scenario`]** — the ScenarioSpec DSL: seven named workload
//!    families (dense/rotated stencils, pipeline, all-to-all shuffle,
//!    power-law graphs, phased drifting mixes, owner-skewed hotspots),
//!    parameterised by task count, intensity, seed and phase schedule, each
//!    compiling deterministically into a [`PhasedWorkload`] for the
//!    simulator backends or an [`OrwlProgram`] for the thread backend;
//! 2. **[`trace`]** — trace capture and replay: per-epoch communication
//!    matrices recorded from monitored runs (the simulator's `SimMonitor`
//!    transfer hooks or the thread runtime's `AccessSink` lock-grant
//!    hooks) into a [`Trace`] that replays as a first-class workload and
//!    round-trips through JSON — adaptive policies can be evaluated
//!    against *captured* rather than synthetic drift;
//! 3. **[`sweep`] + [`report`]** — the grid runner and the JSON reporter:
//!    cross products of scenario × backend (threads / NUMA sim / 2-to-8
//!    node clusters with 1×/2×/4× oversubscription) × policy × mode,
//!    executed through `Session`, always anchored by the Scatter and
//!    flat-TreeMatch baselines, and emitted as the versioned,
//!    schema-checked `BENCH_lab.json` artifact
//!    (`cargo run --release -p orwl-bench --bin lab_sweep`).
//!
//! Determinism is the design constraint throughout: fixed seeds produce
//! byte-identical artifacts, so every future performance PR can regress
//! against the committed numbers.
//!
//! ```
//! use orwl_lab::prelude::*;
//!
//! // One scenario, compiled for a simulator backend...
//! let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42);
//! let workload = spec.workload();
//! assert_eq!(workload.n_tasks(), 16);
//!
//! // ...a trace captured from a monitored run of it...
//! let machine = orwl_numasim::machine::SimMachine::new(
//!     orwl_topo::synthetic::cluster2016_subset(2).unwrap(),
//!     orwl_numasim::costmodel::CostParams::cluster2016(),
//! );
//! let trace = capture_trace(&machine, Policy::TreeMatch, &workload, 4);
//! assert_eq!(trace.total_iterations(), workload.total_iterations());
//!
//! // ...and replayed as a first-class workload.
//! let replay = trace.to_workload();
//! assert_eq!(replay.n_tasks(), 16);
//! ```
//!
//! [`PhasedWorkload`]: orwl_numasim::workload::PhasedWorkload
//! [`OrwlProgram`]: orwl_core::task::OrwlProgram
//! [`Trace`]: trace::Trace

pub mod diff;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod trace;

pub use diff::{diff_documents, DiffEntry};
pub use report::{render_table, sweep_to_json, validate, SchemaError, SCHEMA_VERSION};
pub use scenario::{ScenarioFamily, ScenarioSpec};
pub use sweep::{
    default_sweep_threads, run_sweep, run_sweep_with_threads, BackendSpec, ModeKind, SweepConfig,
    SweepResult, SweepRow, SweepSection,
};
pub use trace::{capture_trace, AccessTraceRecorder, Trace, TraceEpoch, TraceRecorder};

/// The usual lab imports.
pub mod prelude {
    pub use crate::report::{render_table, sweep_to_json, validate, SCHEMA_VERSION};
    pub use crate::scenario::{ScenarioFamily, ScenarioSpec};
    pub use crate::sweep::{run_sweep, BackendSpec, ModeKind, SweepConfig, SweepResult};
    pub use crate::trace::{capture_trace, Trace, TraceRecorder};
    pub use orwl_treematch::policies::Policy;
}
