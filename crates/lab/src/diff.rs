//! Tolerant comparison of two `orwl-lab/v1` artifacts — the library behind
//! the `lab_diff` tool (`cargo run -p orwl-bench --bin lab_diff`).
//!
//! Rows are matched by their identity key (section, scenario, backend,
//! topology, nodes, oversubscription, policy, mode); the numeric metric
//! columns of matched rows are compared within a relative tolerance.
//! Missing or extra rows and metric drift beyond tolerance are reported as
//! [`DiffEntry`]s — an empty report means the artifacts agree.
//!
//! The primary uses are sanity-checking the parallel sweep against a
//! sequential run (tolerance `0` — the artifacts must agree exactly) and
//! comparing benchmark artifacts across machines or branches with a
//! tolerance that absorbs simulator cost-model tweaks.

use crate::report::SchemaError;
use orwl_core::json::Json;

/// The numeric metric columns compared per matched row.  Key columns and
/// non-schema extras (e.g. `placement_wall_seconds`, machine-dependent by
/// design) are excluded.
const METRIC_FIELDS: &[&str] = &[
    "tasks",
    "hop_bytes",
    "sim_seconds",
    "local_fraction",
    "inter_node_hop_bytes",
    "inter_node_fraction",
    "adapt_epochs",
    "adapt_replacements",
    "adapt_node_reshards",
    "vs_scatter",
    "vs_flat_treematch",
];

/// The columns identifying a row across artifacts.
const KEY_FIELDS: &[&str] =
    &["section", "scenario", "backend", "topology", "nodes", "oversubscription", "policy", "mode"];

/// One disagreement between two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffEntry {
    /// A row of the first artifact has no counterpart in the second.
    OnlyInFirst {
        /// The row's identity key.
        key: String,
    },
    /// A row of the second artifact has no counterpart in the first.
    OnlyInSecond {
        /// The row's identity key.
        key: String,
    },
    /// A metric of a matched row drifted beyond the tolerance.
    MetricDrift {
        /// The row's identity key.
        key: String,
        /// The drifted column.
        field: &'static str,
        /// Value in the first artifact (`None` = JSON null).
        first: Option<f64>,
        /// Value in the second artifact.
        second: Option<f64>,
        /// The relative difference that exceeded the tolerance.
        relative: f64,
    },
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffEntry::OnlyInFirst { key } => write!(f, "only in first:  {key}"),
            DiffEntry::OnlyInSecond { key } => write!(f, "only in second: {key}"),
            DiffEntry::MetricDrift { key, field, first, second, relative } => {
                let show = |v: &Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
                write!(
                    f,
                    "{key}: {field} drifted {:.3}% ({} vs {})",
                    100.0 * relative,
                    show(first),
                    show(second)
                )
            }
        }
    }
}

fn row_key(row: &Json) -> String {
    let mut parts = Vec::with_capacity(KEY_FIELDS.len());
    for field in KEY_FIELDS {
        let v = row.get(field);
        parts.push(match v {
            Some(Json::Null) | None => "-".to_string(),
            Some(v) => v.as_str().map_or_else(|| v.to_string(), str::to_string),
        });
    }
    parts.join("/")
}

/// The relative difference used by the tolerance test: `|a − b|` scaled by
/// the larger magnitude (`0` when both are zero).
fn relative_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Compares two **schema-valid** `orwl-lab/v1` documents row by row.
/// Returns the disagreements (empty = agreement within `tol_ratio`), or a
/// [`SchemaError`] when a document is not the expected shape — run
/// [`crate::report::validate`] first for a precise report.
pub fn diff_documents(first: &Json, second: &Json, tol_ratio: f64) -> Result<Vec<DiffEntry>, SchemaError> {
    let rows_of = |doc: &Json, which: &str| -> Result<Vec<Json>, SchemaError> {
        doc.get("rows").and_then(Json::as_arr).map(<[Json]>::to_vec).ok_or(SchemaError {
            path: format!("{which}.rows"),
            message: "expected a rows array (is this an orwl-lab/v1 document?)".to_string(),
        })
    };
    let first_rows = rows_of(first, "first")?;
    let second_rows = rows_of(second, "second")?;

    // Index the second artifact's rows by key (duplicate keys keep their
    // first occurrence; the sweep never emits duplicates).
    let mut second_by_key: Vec<(String, &Json)> = Vec::with_capacity(second_rows.len());
    for row in &second_rows {
        second_by_key.push((row_key(row), row));
    }

    let mut entries = Vec::new();
    let mut matched = vec![false; second_by_key.len()];
    for row in &first_rows {
        let key = row_key(row);
        let Some(pos) = second_by_key.iter().position(|(k, _)| *k == key) else {
            entries.push(DiffEntry::OnlyInFirst { key });
            continue;
        };
        matched[pos] = true;
        let other = second_by_key[pos].1;
        for &field in METRIC_FIELDS {
            let a = row.get(field).and_then(Json::as_f64);
            let b = other.get(field).and_then(Json::as_f64);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    let relative = relative_diff(x, y);
                    if relative > tol_ratio {
                        entries.push(DiffEntry::MetricDrift {
                            key: key.clone(),
                            field,
                            first: a,
                            second: b,
                            relative,
                        });
                    }
                }
                _ => entries.push(DiffEntry::MetricDrift {
                    key: key.clone(),
                    field,
                    first: a,
                    second: b,
                    relative: f64::INFINITY,
                }),
            }
        }
    }
    for (pos, (key, _)) in second_by_key.iter().enumerate() {
        if !matched[pos] {
            entries.push(DiffEntry::OnlyInSecond { key: key.clone() });
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::sweep_to_json;
    use crate::scenario::{ScenarioFamily, ScenarioSpec};
    use crate::sweep::{run_sweep, BackendSpec, ModeKind, SweepConfig, SweepSection};
    use orwl_treematch::policies::Policy;

    fn doc(seed: u64) -> Json {
        sweep_to_json(
            &run_sweep(&SweepConfig {
                seed,
                epoch_iterations: 4,
                thread_iterations: 1,
                sections: vec![SweepSection {
                    label: "diff",
                    scenarios: vec![ScenarioSpec::new(ScenarioFamily::Hotspot, 12, seed)],
                    backends: vec![BackendSpec::NumaSim { sockets: 2 }],
                    policies: vec![Policy::TreeMatch],
                    modes: vec![ModeKind::Static],
                }],
            })
            .unwrap(),
        )
    }

    #[test]
    fn identical_documents_have_no_diff() {
        let a = doc(7);
        assert_eq!(diff_documents(&a, &a, 0.0).unwrap(), Vec::new());
        // Round-tripping through text changes nothing either.
        let b = Json::parse(&a.pretty()).unwrap();
        assert_eq!(diff_documents(&a, &b, 0.0).unwrap(), Vec::new());
    }

    #[test]
    fn metric_drift_is_reported_and_tolerance_absorbs_it() {
        let a = doc(7);
        let mut b = Json::parse(&a.pretty()).unwrap();
        // Nudge one hop_bytes value by 0.5%.
        if let Json::Obj(pairs) = &mut b {
            if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    for (k, v) in row.iter_mut() {
                        if k == "hop_bytes" {
                            let x = v.as_f64().unwrap();
                            *v = Json::Num(x * 1.005);
                        }
                    }
                }
            }
        }
        let drift = diff_documents(&a, &b, 0.0).unwrap();
        assert_eq!(drift.len(), 1);
        match &drift[0] {
            DiffEntry::MetricDrift { field, relative, .. } => {
                assert_eq!(*field, "hop_bytes");
                assert!(*relative > 0.004 && *relative < 0.006);
                // The rendering names the field and both values.
                assert!(drift[0].to_string().contains("hop_bytes"));
            }
            other => panic!("expected MetricDrift, got {other:?}"),
        }
        // 1% tolerance absorbs the nudge.
        assert_eq!(diff_documents(&a, &b, 0.01).unwrap(), Vec::new());
    }

    #[test]
    fn missing_and_extra_rows_are_reported() {
        let a = doc(7);
        let mut b = Json::parse(&a.pretty()).unwrap();
        if let Json::Obj(pairs) = &mut b {
            if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
                rows.remove(0);
            }
        }
        let drift = diff_documents(&a, &b, 0.0).unwrap();
        assert_eq!(drift.len(), 1);
        assert!(matches!(&drift[0], DiffEntry::OnlyInFirst { .. }));
        let reverse = diff_documents(&b, &a, 0.0).unwrap();
        assert!(matches!(&reverse[0], DiffEntry::OnlyInSecond { .. }));
    }

    #[test]
    fn null_vs_number_is_infinite_drift() {
        let a = doc(7);
        let mut b = Json::parse(&a.pretty()).unwrap();
        if let Json::Obj(pairs) = &mut b {
            if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    for (k, v) in row.iter_mut() {
                        if k == "sim_seconds" {
                            *v = Json::Null;
                        }
                    }
                }
            }
        }
        let drift = diff_documents(&a, &b, 1.0e9).unwrap();
        assert!(matches!(
            &drift[0],
            DiffEntry::MetricDrift { field: "sim_seconds", relative, .. } if relative.is_infinite()
        ));
    }

    #[test]
    fn non_lab_documents_are_a_typed_error() {
        let junk = Json::parse("{\"hello\": 1}").unwrap();
        let err = diff_documents(&junk, &doc(7), 0.0).unwrap_err();
        assert!(err.path.contains("first"));
    }
}
