//! The ScenarioSpec DSL: deterministic, seeded generators for named
//! workload families.
//!
//! A [`ScenarioSpec`] is a small value — family, task count, intensity,
//! seed, phase schedule — that *compiles* into concrete workloads for any
//! `Session` backend:
//!
//! * [`ScenarioSpec::workload`] — a [`PhasedWorkload`] for the simulator
//!   backends (`SimBackend`, `ClusterBackend`);
//! * [`ScenarioSpec::program`] — an [`OrwlProgram`] whose declared location
//!   links reproduce the first phase's communication matrix, for the real
//!   thread backend.
//!
//! Everything is a pure function of the spec: the same spec always produces
//! byte-identical matrices, which is what makes the sweep reporter's
//! `BENCH_lab.json` reproducible.

use orwl_comm::matrix::CommMatrix;
use orwl_comm::patterns;
use orwl_core::task::{LocationLink, OrwlProgram, TaskSpec};
use orwl_core::{AccessMode, Location};
use orwl_numasim::taskgraph::TaskGraph;
use orwl_numasim::workload::{Phase, PhasedWorkload};
use std::sync::Arc;

/// Grid elements computed per task per iteration in compiled workloads.
pub const ELEMENTS_PER_TASK: f64 = 16384.0;
/// Private working-set bytes streamed per task per iteration.
pub const PRIVATE_BYTES_PER_TASK: f64 = 131072.0;

/// The named workload families of the lab.
///
/// Each family is a distinct communication *shape*; the spec's task count,
/// intensity and seed parameterise it.  `is_drifting` families change their
/// matrix across phases (the adaptive-placement test beds), the others keep
/// one matrix and use the phase schedule only as an iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Uniform 9-point halo exchange on a square task grid — the paper's
    /// LK23 decomposition shape.
    DenseStencil,
    /// Directionally-swept stencil whose heavy axis rotates 90° between
    /// phases — the canonical drifting workload.
    RotatedStencil,
    /// A staged pipeline: heavy forward chain, light wrap-around feedback.
    Pipeline,
    /// All-to-all shuffle: every task exchanges with every other — the
    /// placement-indifferent worst case that pins the lower bound.
    Shuffle,
    /// Irregular power-law graph (preferential attachment): hub tasks
    /// concentrate the traffic.
    PowerLaw,
    /// Phased drifting mix: the matrix morphs linearly from a dense stencil
    /// into a hotspot pattern across the phase schedule.
    DriftMix,
    /// Owner-skewed hotspot: a few owner tasks serve all the others.
    Hotspot,
}

impl ScenarioFamily {
    /// Every family, in the canonical (report) order.
    pub const ALL: [ScenarioFamily; 7] = [
        ScenarioFamily::DenseStencil,
        ScenarioFamily::RotatedStencil,
        ScenarioFamily::Pipeline,
        ScenarioFamily::Shuffle,
        ScenarioFamily::PowerLaw,
        ScenarioFamily::DriftMix,
        ScenarioFamily::Hotspot,
    ];

    /// Short machine-friendly name (used in reports and JSON rows).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::DenseStencil => "dense_stencil",
            ScenarioFamily::RotatedStencil => "rotated_stencil",
            ScenarioFamily::Pipeline => "pipeline",
            ScenarioFamily::Shuffle => "shuffle",
            ScenarioFamily::PowerLaw => "power_law",
            ScenarioFamily::DriftMix => "drift_mix",
            ScenarioFamily::Hotspot => "hotspot",
        }
    }

    /// True when the family's matrix changes across phases.
    #[must_use]
    pub fn is_drifting(&self) -> bool {
        matches!(self, ScenarioFamily::RotatedStencil | ScenarioFamily::DriftMix)
    }

    /// True when the family lives on a square task grid (its effective
    /// task count is a perfect square).
    #[must_use]
    pub fn is_square(&self) -> bool {
        matches!(
            self,
            ScenarioFamily::DenseStencil | ScenarioFamily::RotatedStencil | ScenarioFamily::DriftMix
        )
    }

    /// The default phase schedule of the family: drifting families get
    /// several phases, stationary ones a single phase of the same total
    /// length.
    #[must_use]
    pub fn default_phases(&self) -> Vec<usize> {
        match self {
            ScenarioFamily::RotatedStencil => vec![12, 28],
            ScenarioFamily::DriftMix => vec![10, 10, 10, 10],
            _ => vec![40],
        }
    }
}

/// A deterministic, seeded workload description: the unit of the lab's
/// experiment grids.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The workload family.
    pub family: ScenarioFamily,
    /// Requested task count (stencil families round down to a square; use
    /// [`n_tasks`](ScenarioSpec::n_tasks) for the effective count).
    pub tasks: usize,
    /// Volume scale: 1.0 is the calibrated evaluation intensity.
    pub intensity: f64,
    /// Seed for the irregular families (power-law wiring, hotspot owners).
    pub seed: u64,
    /// Iterations per phase; drifting families change their matrix at each
    /// boundary.
    pub phase_iterations: Vec<usize>,
}

impl ScenarioSpec {
    /// A spec with the family's default phase schedule, intensity 1.
    #[must_use]
    pub fn new(family: ScenarioFamily, tasks: usize, seed: u64) -> Self {
        ScenarioSpec { family, tasks, intensity: 1.0, seed, phase_iterations: family.default_phases() }
    }

    /// The full catalog: one default spec per family, sharing `tasks` and
    /// `seed` — the standard grid axis of the sweep runner.
    #[must_use]
    pub fn catalog(tasks: usize, seed: u64) -> Vec<ScenarioSpec> {
        ScenarioFamily::ALL.iter().map(|&family| ScenarioSpec::new(family, tasks, seed)).collect()
    }

    /// Same spec with a different task count (used by oversubscription
    /// grids that derive the count from the machine).
    #[must_use]
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = tasks;
        self
    }

    /// Same spec with a different phase schedule.
    #[must_use]
    pub fn with_phases(mut self, phase_iterations: Vec<usize>) -> Self {
        self.phase_iterations = phase_iterations;
        self
    }

    /// Same spec with a different intensity.
    #[must_use]
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity;
        self
    }

    /// The side of the square task grid used by stencil families.
    fn side(&self) -> usize {
        ((self.tasks as f64).sqrt().floor() as usize).max(2)
    }

    /// The effective task count after family shape rounding.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        if self.family.is_square() {
            self.side() * self.side()
        } else {
            self.tasks.max(2)
        }
    }

    /// Unique machine-friendly name: family, effective tasks, seed.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}-t{}-s{}", self.family.name(), self.n_tasks(), self.seed)
    }

    /// The communication matrix of phase `k` (phases beyond the schedule
    /// repeat the last one).  Every matrix is symmetric.
    #[must_use]
    pub fn phase_matrix(&self, k: usize) -> CommMatrix {
        let i = self.intensity;
        let n = self.n_tasks();
        let side = self.side();
        let phases = self.phase_iterations.len().max(1);
        let k = k.min(phases - 1);
        match self.family {
            ScenarioFamily::DenseStencil => {
                let spec = patterns::StencilSpec {
                    rows: side,
                    cols: side,
                    edge_volume: 65536.0 * i,
                    corner_volume: 1024.0 * i,
                };
                patterns::stencil_2d(&spec)
            }
            ScenarioFamily::RotatedStencil => {
                let (a, b) = patterns::rotating_sweep_matrices(side, 65536.0 * i, 1024.0 * i);
                if k.is_multiple_of(2) {
                    a
                } else {
                    b
                }
            }
            ScenarioFamily::Pipeline => {
                let mut m = patterns::chain(n, 65536.0 * i);
                let feedback = patterns::ring(n, 1024.0 * i).symmetrized();
                m.add_scaled(&feedback, 1.0);
                m
            }
            ScenarioFamily::Shuffle => patterns::all_to_all(n, 2048.0 * i),
            ScenarioFamily::PowerLaw => patterns::power_law(n, 3, 16384.0 * i, self.seed),
            ScenarioFamily::DriftMix => {
                let stencil =
                    ScenarioSpec { family: ScenarioFamily::DenseStencil, ..self.clone() }.phase_matrix(0);
                let hot = patterns::hotspot(n, (n / 8).max(1), 1024.0 * i, 65536.0 * i, self.seed);
                let t = if phases == 1 { 0.0 } else { k as f64 / (phases - 1) as f64 };
                patterns::blend(&stencil, &hot, t)
            }
            ScenarioFamily::Hotspot => {
                patterns::hotspot(n, (n / 8).max(1), 1024.0 * i, 65536.0 * i, self.seed)
            }
        }
    }

    /// All phase matrices, one per schedule entry.
    #[must_use]
    pub fn phase_matrices(&self) -> Vec<CommMatrix> {
        (0..self.phase_iterations.len().max(1)).map(|k| self.phase_matrix(k)).collect()
    }

    /// Compiles the spec into a phased task-graph workload for the
    /// simulator backends.
    #[must_use]
    pub fn workload(&self) -> PhasedWorkload {
        let phases = self
            .phase_matrices()
            .into_iter()
            .zip(self.phase_iterations.iter().copied().chain(std::iter::repeat(1)))
            .map(|(m, iterations)| Phase {
                graph: TaskGraph::from_matrix(&m, ELEMENTS_PER_TASK, PRIVATE_BYTES_PER_TASK),
                iterations,
            })
            .collect();
        PhasedWorkload { phases }
    }

    /// Compiles the spec into a real ORWL program for the thread backend.
    ///
    /// Task `i` owns one location it writes; task `j` declares a read link
    /// of `m[i][j]` bytes on it, so the program's extracted communication
    /// matrix equals the first phase's matrix exactly.  Bodies acquire the
    /// task's own location `iterations` times — enough to exercise the
    /// runtime and its monitor without cross-task lock ordering.
    #[must_use]
    pub fn program(&self, iterations: usize) -> OrwlProgram {
        let m = self.phase_matrix(0);
        let n = m.order();
        let locations: Vec<Arc<Location<u64>>> =
            (0..n).map(|t| Location::new(format!("{}-loc{t}", self.family.name()), 0u64)).collect();
        let mut program = OrwlProgram::new();
        for t in 0..n {
            let mut links = vec![LocationLink::write(locations[t].id(), 1.0)];
            for (src, location) in locations.iter().enumerate() {
                let bytes = m.get(src, t);
                if src != t && bytes > 0.0 {
                    links.push(LocationLink::read(location.id(), bytes));
                }
            }
            let own = Arc::clone(&locations[t]);
            program.add_task(TaskSpec::new(format!("{}-{t}", self.family.name()), links), move |_| {
                let mut handle = own.iterative_handle(AccessMode::Write);
                for _ in 0..iterations {
                    *handle.acquire().expect("own location is always grantable") += 1;
                }
            });
        }
        program
    }

    /// Total iterations over the schedule.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.phase_iterations.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_family_once() {
        let specs = ScenarioSpec::catalog(16, 42);
        assert_eq!(specs.len(), ScenarioFamily::ALL.len());
        assert!(specs.len() >= 6, "the lab promises at least six families");
        let names: std::collections::HashSet<&str> = specs.iter().map(|s| s.family.name()).collect();
        assert_eq!(names.len(), specs.len(), "family names must be unique");
    }

    #[test]
    fn specs_are_deterministic() {
        for family in ScenarioFamily::ALL {
            let a = ScenarioSpec::new(family, 16, 7);
            let b = ScenarioSpec::new(family, 16, 7);
            assert_eq!(a.phase_matrices(), b.phase_matrices(), "{family:?} must be reproducible");
        }
        // Seeded families change with the seed.
        let p7 = ScenarioSpec::new(ScenarioFamily::PowerLaw, 16, 7);
        let p8 = ScenarioSpec::new(ScenarioFamily::PowerLaw, 16, 8);
        assert_ne!(p7.phase_matrix(0), p8.phase_matrix(0));
    }

    #[test]
    fn matrices_are_symmetric_and_sized() {
        for family in ScenarioFamily::ALL {
            let spec = ScenarioSpec::new(family, 16, 42);
            for (k, m) in spec.phase_matrices().into_iter().enumerate() {
                assert_eq!(m.order(), spec.n_tasks(), "{family:?} phase {k}");
                assert!(m.is_symmetric(), "{family:?} phase {k} must be symmetric");
                assert!(m.total_volume() > 0.0, "{family:?} phase {k} must carry traffic");
            }
        }
    }

    #[test]
    fn drifting_families_change_across_phases() {
        for family in ScenarioFamily::ALL {
            let spec = ScenarioSpec::new(family, 16, 42);
            let ms = spec.phase_matrices();
            if family.is_drifting() {
                assert!(ms.len() > 1);
                assert_ne!(ms[0], ms[ms.len() - 1], "{family:?} must drift");
            } else {
                assert!(ms.windows(2).all(|w| w[0] == w[1]), "{family:?} must be stationary");
            }
        }
    }

    #[test]
    fn intensity_scales_volume_linearly() {
        let base = ScenarioSpec::new(ScenarioFamily::DenseStencil, 16, 1);
        let double = base.clone().with_intensity(2.0);
        let (b, d) = (base.phase_matrix(0), double.phase_matrix(0));
        assert!((d.total_volume() - 2.0 * b.total_volume()).abs() < 1e-6);
    }

    #[test]
    fn workload_matches_phase_matrices() {
        let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42);
        let w = spec.workload();
        assert_eq!(w.phases.len(), 2);
        assert_eq!(w.total_iterations(), spec.total_iterations());
        assert_eq!(w.phases[0].graph.comm_matrix(), spec.phase_matrix(0));
        assert_eq!(w.phases[1].graph.comm_matrix(), spec.phase_matrix(1));
        assert_eq!(w.n_tasks(), 16);
    }

    #[test]
    fn program_reproduces_the_first_phase_matrix() {
        for family in [ScenarioFamily::DenseStencil, ScenarioFamily::Hotspot, ScenarioFamily::PowerLaw] {
            let spec = ScenarioSpec::new(family, 9, 5);
            let program = spec.program(1);
            assert_eq!(program.comm_matrix(), spec.phase_matrix(0), "{family:?}");
        }
    }

    #[test]
    fn tiny_task_counts_stay_valid() {
        for family in ScenarioFamily::ALL {
            let spec = ScenarioSpec::new(family, 2, 3);
            let m = spec.phase_matrix(0);
            assert!(m.order() >= 2, "{family:?}");
            assert!(m.total_volume() > 0.0, "{family:?}");
        }
        // Stencils round to squares.
        let s = ScenarioSpec::new(ScenarioFamily::DenseStencil, 15, 0);
        assert_eq!(s.n_tasks(), 9);
        assert!(s.name().contains("t9"));
    }
}
