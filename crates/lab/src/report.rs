//! The JSON reporter: a versioned, schema-checked benchmark artifact.
//!
//! [`sweep_to_json`] lowers a [`SweepResult`] into the `BENCH_lab.json`
//! document (schema [`SCHEMA_VERSION`]); [`validate`] checks any parsed
//! document against that schema — required keys, types, nullability, and
//! the closed vocabularies of backends and modes — so CI fails loudly when
//! the artifact shape drifts; [`render_table`] prints the human view the
//! examples show.
//!
//! The document is deterministic end to end: ordered objects, sorted grid
//! rows (the sweep already emits them in grid order), shortest-roundtrip
//! float formatting, and no wall-clock values.  Running the same sweep with
//! the same seed twice yields byte-identical bytes — the property the
//! `lab_determinism` integration test pins.

use crate::sweep::{SweepResult, SweepRow};
use orwl_core::json::Json;
use std::fmt::Write as _;

/// The artifact schema identifier; bump on any shape change.
pub const SCHEMA_VERSION: &str = "orwl-lab/v1";

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn row_to_json(row: &SweepRow) -> Json {
    let mut o = Json::obj();
    o.push("section", row.section)
        .push("scenario", row.scenario.as_str())
        .push("family", row.family)
        .push("tasks", row.tasks)
        .push("backend", row.backend)
        .push("topology", row.topology.as_str())
        .push("nodes", row.nodes.map(|n| n as f64).map_or(Json::Null, Json::Num))
        .push("oversubscription", row.oversubscription.map(|n| n as f64).map_or(Json::Null, Json::Num))
        .push("policy", row.policy)
        .push("mode", row.mode)
        .push("hop_bytes", row.hop_bytes)
        .push("sim_seconds", opt_num(row.sim_seconds))
        .push("local_fraction", row.local_fraction)
        .push("inter_node_hop_bytes", opt_num(row.inter_node_hop_bytes))
        .push("inter_node_fraction", opt_num(row.inter_node_fraction))
        .push("adapt_epochs", row.adapt_epochs.map(|n| n as f64).map_or(Json::Null, Json::Num))
        .push("adapt_replacements", row.adapt_replacements.map(|n| n as f64).map_or(Json::Null, Json::Num))
        .push("adapt_node_reshards", row.adapt_node_reshards.map(|n| n as f64).map_or(Json::Null, Json::Num))
        .push("vs_scatter", opt_num(row.vs_scatter))
        .push("vs_flat_treematch", opt_num(row.vs_flat_treematch));
    o
}

/// Lowers a sweep result into the versioned `BENCH_lab.json` document.
#[must_use]
pub fn sweep_to_json(result: &SweepResult) -> Json {
    let mut o = Json::obj();
    let families: Vec<&str> = {
        let mut seen = Vec::new();
        for row in &result.rows {
            if !seen.contains(&row.family) {
                seen.push(row.family);
            }
        }
        seen
    };
    let backends: Vec<&str> = {
        let mut seen = Vec::new();
        for row in &result.rows {
            if !seen.contains(&row.backend) {
                seen.push(row.backend);
            }
        }
        seen
    };
    o.push("schema", SCHEMA_VERSION)
        .push("seed", result.seed)
        .push("n_rows", result.rows.len())
        .push("families", Json::Arr(families.into_iter().map(Json::from).collect()))
        .push("backends", Json::Arr(backends.into_iter().map(Json::from).collect()))
        .push("rows", Json::Arr(result.rows.iter().map(row_to_json).collect()));
    o
}

/// A schema violation: where, and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// JSON-pointer-ish location (`rows[3].hop_bytes`).
    pub path: String,
    /// What the schema expected.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema violation at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SchemaError {}

fn fail(path: impl Into<String>, message: impl Into<String>) -> Result<(), SchemaError> {
    Err(SchemaError { path: path.into(), message: message.into() })
}

/// Field kinds of the row schema.
enum Field {
    Str,
    FiniteNum,
    /// A finite number or `null`.
    NullableNum,
}

const ROW_FIELDS: &[(&str, Field)] = &[
    ("section", Field::Str),
    ("scenario", Field::Str),
    ("family", Field::Str),
    ("tasks", Field::FiniteNum),
    ("backend", Field::Str),
    ("topology", Field::Str),
    ("nodes", Field::NullableNum),
    ("oversubscription", Field::NullableNum),
    ("policy", Field::Str),
    ("mode", Field::Str),
    ("hop_bytes", Field::FiniteNum),
    ("sim_seconds", Field::NullableNum),
    ("local_fraction", Field::FiniteNum),
    ("inter_node_hop_bytes", Field::NullableNum),
    ("inter_node_fraction", Field::NullableNum),
    ("adapt_epochs", Field::NullableNum),
    ("adapt_replacements", Field::NullableNum),
    ("adapt_node_reshards", Field::NullableNum),
    ("vs_scatter", Field::NullableNum),
    ("vs_flat_treematch", Field::NullableNum),
];

const KNOWN_BACKENDS: &[&str] = &["threads", "numasim", "cluster"];
const KNOWN_MODES: &[&str] = &["static", "adaptive", "oracle"];

/// Validates a parsed document against the [`SCHEMA_VERSION`] schema.
pub fn validate(doc: &Json) -> Result<(), SchemaError> {
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA_VERSION) {
        return fail("schema", format!("expected {SCHEMA_VERSION:?}, got {schema:?}"));
    }
    match doc.get("seed").and_then(Json::as_f64) {
        Some(s) if s.is_finite() && s >= 0.0 => {}
        other => return fail("seed", format!("expected a non-negative number, got {other:?}")),
    }
    for key in ["families", "backends"] {
        let list = doc.get(key).and_then(Json::as_arr);
        match list {
            Some(items) if !items.is_empty() => {
                for (i, item) in items.iter().enumerate() {
                    if item.as_str().is_none() {
                        return fail(format!("{key}[{i}]"), "expected a string");
                    }
                }
            }
            _ => return fail(key, "expected a non-empty array of strings"),
        }
    }
    let rows = match doc.get("rows").and_then(Json::as_arr) {
        Some(rows) if !rows.is_empty() => rows,
        _ => return fail("rows", "expected a non-empty array"),
    };
    if doc.get("n_rows").and_then(Json::as_f64) != Some(rows.len() as f64) {
        return fail("n_rows", format!("must equal rows.len() = {}", rows.len()));
    }
    for (i, row) in rows.iter().enumerate() {
        let path = |field: &str| format!("rows[{i}].{field}");
        if !matches!(row, Json::Obj(_)) {
            return fail(format!("rows[{i}]"), "expected an object");
        }
        for (field, kind) in ROW_FIELDS {
            let value = row.get(field);
            match (kind, value) {
                (_, None) => return fail(path(field), "missing required field"),
                (Field::Str, Some(v)) if v.as_str().is_some() => {}
                (Field::FiniteNum, Some(v)) if v.as_f64().is_some_and(f64::is_finite) => {}
                (Field::NullableNum, Some(v)) if v.is_null() || v.as_f64().is_some_and(f64::is_finite) => {}
                (_, Some(v)) => return fail(path(field), format!("wrong type: {v}")),
            }
        }
        let backend = row.get("backend").and_then(Json::as_str).expect("checked above");
        if !KNOWN_BACKENDS.contains(&backend) {
            return fail(path("backend"), format!("unknown backend {backend:?}"));
        }
        let mode = row.get("mode").and_then(Json::as_str).expect("checked above");
        if !KNOWN_MODES.contains(&mode) {
            return fail(path("mode"), format!("unknown mode {mode:?}"));
        }
        // Cross-field consistency: cluster rows carry fabric numbers and
        // node counts, thread rows never carry simulated time.
        let is_cluster = backend == "cluster";
        for field in ["nodes", "oversubscription", "inter_node_hop_bytes", "inter_node_fraction"] {
            let present = !row.get(field).expect("checked above").is_null();
            if present != is_cluster {
                return fail(
                    path(field),
                    format!("must be {} on {backend} rows", if is_cluster { "set" } else { "null" }),
                );
            }
        }
        let has_time = !row.get("sim_seconds").expect("checked above").is_null();
        if has_time == (backend == "threads") {
            return fail(path("sim_seconds"), "wall time must not be recorded; simulated time must be");
        }
    }
    Ok(())
}

/// The human-readable sweep table shown by the examples (one line per row,
/// grouped by section).
#[must_use]
pub fn render_table(result: &SweepResult) -> String {
    let mut out = String::new();
    let mut section = "";
    for row in &result.rows {
        if row.section != section {
            section = row.section;
            let _ = writeln!(
                out,
                "\n[{section}]\n{:<26} {:>8} {:<8} {:<12} {:<9} {:>13} {:>8} {:>8} {:>9}",
                "scenario",
                "backend",
                "mode",
                "policy",
                "oversub",
                "hop-bytes",
                "inter%",
                "vs-scat",
                "migr/resh"
            );
        }
        let inter = row.inter_node_fraction.map_or_else(|| "-".to_string(), |f| format!("{:.1}%", 100.0 * f));
        let vs = row.vs_scatter.map_or_else(|| "-".to_string(), |r| format!("{r:.3}"));
        let oversub = row.oversubscription.map_or_else(|| "-".to_string(), |o| format!("{o}x"));
        let adapt = match (row.adapt_replacements, row.adapt_node_reshards) {
            (Some(m), Some(r)) => format!("{m}/{r}"),
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:<8} {:<12} {:<9} {:>13.4e} {:>8} {:>8} {:>9}",
            row.scenario, row.backend, row.mode, row.policy, oversub, row.hop_bytes, inter, vs, adapt
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioFamily, ScenarioSpec};
    use crate::sweep::{run_sweep, BackendSpec, ModeKind, SweepConfig, SweepSection};
    use orwl_treematch::policies::Policy;

    fn small_result() -> SweepResult {
        run_sweep(&SweepConfig {
            seed: 7,
            epoch_iterations: 4,
            thread_iterations: 1,
            sections: vec![SweepSection {
                label: "unit",
                scenarios: vec![ScenarioSpec::new(ScenarioFamily::Hotspot, 12, 7)],
                backends: vec![BackendSpec::NumaSim { sockets: 2 }],
                policies: vec![Policy::TreeMatch],
                modes: vec![ModeKind::Static],
            }],
        })
        .unwrap()
    }

    #[test]
    fn emitted_document_validates_and_round_trips() {
        let result = small_result();
        let doc = sweep_to_json(&result);
        validate(&doc).unwrap();
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), SCHEMA_VERSION);
        assert_eq!(doc.get("n_rows").unwrap().as_f64().unwrap() as usize, result.rows.len());
    }

    #[test]
    fn validator_rejects_shape_drift() {
        let doc = sweep_to_json(&small_result());
        let text = doc.to_string();

        // Wrong schema string.
        let mut bad = Json::parse(&text.replace("orwl-lab/v1", "orwl-lab/v0")).unwrap();
        assert_eq!(validate(&bad).unwrap_err().path, "schema");

        // A row missing a required field.
        bad = doc.clone();
        if let Json::Obj(pairs) = &mut bad {
            if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    row.retain(|(k, _)| k != "hop_bytes");
                }
            }
        }
        assert!(validate(&bad).unwrap_err().path.contains("hop_bytes"));

        // n_rows out of sync.
        bad = doc.clone();
        if let Json::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "n_rows" {
                    *v = Json::Num(99.0);
                }
            }
        }
        assert_eq!(validate(&bad).unwrap_err().path, "n_rows");

        // A numasim row must not carry fabric numbers.
        bad = doc.clone();
        if let Json::Obj(pairs) = &mut bad {
            if let Some((_, Json::Arr(rows))) = pairs.iter_mut().find(|(k, _)| k == "rows") {
                if let Json::Obj(row) = &mut rows[0] {
                    for (k, v) in row.iter_mut() {
                        if k == "nodes" {
                            *v = Json::Num(2.0);
                        }
                    }
                }
            }
        }
        assert!(validate(&bad).unwrap_err().path.contains("nodes"));

        // Unknown mode vocabulary.
        bad = Json::parse(&text.replace("\"static\"", "\"warp\"")).unwrap();
        assert!(validate(&bad).unwrap_err().message.contains("unknown mode"));
    }

    #[test]
    fn table_renders_every_row() {
        let result = small_result();
        let table = render_table(&result);
        assert!(table.contains("[unit]"));
        assert!(table.contains("hotspot"));
        assert!(table.contains("scatter"));
        assert_eq!(table.matches("numasim").count(), result.rows.len());
    }
}
