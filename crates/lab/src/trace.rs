//! Trace capture and replay: turn *monitored* runs into first-class
//! workloads.
//!
//! Synthetic drift (the rotated stencil) is a controlled experiment;
//! captured drift is the real thing.  This module records the per-epoch
//! communication matrices a monitored execution actually produced — from
//! the simulator's [`SimMonitor`] transfer hooks, or from the thread
//! runtime's [`AccessSink`] lock-grant hooks — into a [`Trace`]:
//!
//! * a trace **replays** as a [`PhasedWorkload`] (one phase per epoch), so
//!   adaptive policies can be evaluated against captured rather than
//!   synthetic drift, on any simulator backend;
//! * a trace **round-trips through JSON** (sparse, sorted entries), so
//!   captured runs can be committed, diffed and replayed later;
//! * replaying a trace through the same machine and placement reproduces
//!   the originating run's hop-bytes (the `lab_trace_replay` integration
//!   test pins the error under 1%).

use crate::scenario::{ELEMENTS_PER_TASK, PRIVATE_BYTES_PER_TASK};
use orwl_comm::matrix::CommMatrix;
use orwl_core::json::Json;
use orwl_core::monitor::AccessSink;
use orwl_core::{AccessMode, LocationId, TaskId};
use orwl_numasim::exec::{simulate_monitored, SimMonitor};
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_numasim::workload::{Phase, PhasedWorkload};
use orwl_treematch::policies::{compute_placement, Policy};
use std::sync::Mutex;

/// One monitoring epoch of a captured run: the bytes observed between two
/// epoch boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEpoch {
    /// Iterations (simulator) or epoch units (thread runtime) the matrix
    /// accumulates over.
    pub iterations: usize,
    /// Total bytes observed per task pair during the epoch.
    pub matrix: CommMatrix,
}

impl TraceEpoch {
    /// The per-iteration mean matrix of the epoch.
    #[must_use]
    pub fn mean_matrix(&self) -> CommMatrix {
        self.matrix.scaled(1.0 / self.iterations.max(1) as f64)
    }
}

/// A captured communication timeline: what the monitor saw, epoch by epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Number of tasks observed.
    pub n_tasks: usize,
    /// Free-form provenance label (scenario name, machine, policy…).
    pub source: String,
    /// The recorded epochs, in time order.
    pub epochs: Vec<TraceEpoch>,
}

impl Trace {
    /// Total bytes observed over the whole trace.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.epochs.iter().map(|e| e.matrix.total_volume()).sum()
    }

    /// Total iterations over the whole trace.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.epochs.iter().map(|e| e.iterations).sum()
    }

    /// Replays the trace as a phased workload: one phase per epoch, the
    /// task graph rebuilt from the epoch's per-iteration mean matrix.  The
    /// trace becomes a first-class citizen of the `Session` API — any
    /// simulator backend, any policy, any mode.
    #[must_use]
    pub fn to_workload(&self) -> PhasedWorkload {
        let phases = self
            .epochs
            .iter()
            .filter(|e| e.iterations > 0)
            .map(|e| Phase {
                graph: TaskGraph::from_matrix(&e.mean_matrix(), ELEMENTS_PER_TASK, PRIVATE_BYTES_PER_TASK),
                iterations: e.iterations,
            })
            .collect();
        PhasedWorkload { phases }
    }

    /// Serialises the trace (sparse entries, sorted by `(src, dst)` — the
    /// output is byte-reproducible).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("format", "orwl-lab-trace/v1")
            .push("n_tasks", self.n_tasks)
            .push("source", self.source.as_str());
        let epochs: Vec<Json> = self
            .epochs
            .iter()
            .map(|e| {
                let mut eo = Json::obj();
                let mut entries = Vec::new();
                for src in 0..e.matrix.order() {
                    for dst in 0..e.matrix.order() {
                        let bytes = e.matrix.get(src, dst);
                        if bytes != 0.0 {
                            entries.push(Json::Arr(vec![
                                Json::Num(src as f64),
                                Json::Num(dst as f64),
                                Json::Num(bytes),
                            ]));
                        }
                    }
                }
                eo.push("iterations", e.iterations).push("entries", Json::Arr(entries));
                eo
            })
            .collect();
        o.push("epochs", Json::Arr(epochs));
        o
    }

    /// Rebuilds a trace from its JSON form (strict: unknown format strings
    /// and malformed entries are errors, not guesses).
    pub fn from_json(json: &Json) -> Result<Trace, String> {
        let format = json.get("format").and_then(Json::as_str).ok_or("missing format")?;
        if format != "orwl-lab-trace/v1" {
            return Err(format!("unsupported trace format {format:?}"));
        }
        let n_tasks = json.get("n_tasks").and_then(Json::as_f64).ok_or("missing n_tasks")? as usize;
        let source = json.get("source").and_then(Json::as_str).ok_or("missing source")?.to_string();
        let epochs = json
            .get("epochs")
            .and_then(Json::as_arr)
            .ok_or("missing epochs")?
            .iter()
            .map(|e| {
                let iterations =
                    e.get("iterations").and_then(Json::as_f64).ok_or("missing epoch iterations")? as usize;
                let mut matrix = CommMatrix::zeros(n_tasks);
                for entry in e.get("entries").and_then(Json::as_arr).ok_or("missing epoch entries")? {
                    let [src, dst, bytes] = entry.as_arr().ok_or("entry is not an array")? else {
                        return Err("entry is not a [src, dst, bytes] triple".to_string());
                    };
                    let (src, dst) = (
                        src.as_f64().ok_or("src is not a number")? as usize,
                        dst.as_f64().ok_or("dst is not a number")? as usize,
                    );
                    if src >= n_tasks || dst >= n_tasks {
                        return Err(format!("entry ({src}, {dst}) outside {n_tasks} tasks"));
                    }
                    matrix.set(src, dst, bytes.as_f64().ok_or("bytes is not a number")?);
                }
                Ok(TraceEpoch { iterations, matrix })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Trace { n_tasks, source, epochs })
    }
}

/// A [`SimMonitor`] that accumulates transfers into trace epochs.  Drive it
/// through [`capture_trace`], or roll epochs yourself for custom loops.
#[derive(Debug)]
pub struct TraceRecorder {
    current: CommMatrix,
    iterations: usize,
    epochs: Vec<TraceEpoch>,
}

impl TraceRecorder {
    /// A recorder for `n_tasks` tasks with an empty first epoch.
    #[must_use]
    pub fn new(n_tasks: usize) -> Self {
        TraceRecorder { current: CommMatrix::zeros(n_tasks), iterations: 0, epochs: Vec::new() }
    }

    /// Closes the current epoch (no-op when nothing was observed and no
    /// iteration ran).
    pub fn roll_epoch(&mut self) {
        if self.iterations == 0 && self.current.total_volume() == 0.0 {
            return;
        }
        let n = self.current.order();
        let matrix = std::mem::replace(&mut self.current, CommMatrix::zeros(n));
        self.epochs.push(TraceEpoch { iterations: self.iterations.max(1), matrix });
        self.iterations = 0;
    }

    /// Finishes the recording into a [`Trace`] labelled `source`.
    #[must_use]
    pub fn finish(mut self, source: impl Into<String>) -> Trace {
        self.roll_epoch();
        Trace { n_tasks: self.current.order(), source: source.into(), epochs: self.epochs }
    }
}

impl SimMonitor for TraceRecorder {
    fn on_transfer(&mut self, _iteration: usize, src: usize, dst: usize, bytes: f64) {
        self.current.add(src, dst, bytes);
    }

    fn on_iteration_end(&mut self, _iteration: usize, _elapsed: f64) {
        self.iterations += 1;
    }
}

/// Captures a trace from a *static* monitored run on the single-node
/// simulator: the placement is computed once from the first phase (exactly
/// like `SimBackend` in static mode), and the recorder rolls an epoch every
/// `epoch_iterations` iterations.
///
/// The returned trace replays through the same machine and policy to the
/// originating run's hop-bytes (pinned within 1% by the integration test).
#[must_use]
pub fn capture_trace(
    machine: &SimMachine,
    policy: Policy,
    workload: &PhasedWorkload,
    epoch_iterations: usize,
) -> Trace {
    let n = workload.n_tasks();
    let matrix = workload.phases[0].graph.comm_matrix().symmetrized();
    let placement = compute_placement(policy, machine.topology(), &matrix, 0);
    let pus = machine.topology().pu_os_indices();
    let mapping = placement.compute_mapping_with(|t| pus[t % pus.len()]);
    let scenario = ExecutionScenario::bound(machine, mapping).with_label(policy.name());

    let mut recorder = TraceRecorder::new(n);
    for phase in &workload.phases {
        let mut done = 0;
        while done < phase.iterations {
            let chunk = epoch_iterations.max(1).min(phase.iterations - done);
            simulate_monitored(machine, &phase.graph, &scenario, chunk, &mut recorder);
            recorder.roll_epoch();
            done += chunk;
        }
    }
    recorder.finish(format!("sim:{}:{}", machine.topology().name(), policy.name()))
}

/// Captures a trace from a *static* monitored run on the multi-node
/// cluster simulator — [`capture_trace`]'s sibling for
/// [`ClusterMachine`](orwl_cluster::ClusterMachine): the two-level (or
/// flattened, for flat policies) placement is computed once from the first
/// phase, exactly like `ClusterBackend` in static mode, and the recorder
/// rolls an epoch every `epoch_iterations` iterations.
///
/// The returned trace replays through the same machine and policy to the
/// originating run's hop-bytes (pinned within 1% by the
/// `cluster_trace_replay` integration test).
#[must_use]
pub fn capture_cluster_trace(
    machine: &orwl_cluster::ClusterMachine,
    policy: Policy,
    workload: &PhasedWorkload,
    epoch_iterations: usize,
) -> Trace {
    let n = workload.n_tasks();
    let matrix = workload.phases[0].graph.comm_matrix().symmetrized();
    let mapping: Vec<usize> = match policy {
        Policy::Hierarchical => {
            orwl_cluster::placement::hierarchical_placement(machine, &matrix).global_mapping(machine)
        }
        policy => {
            let flat = machine.topology();
            let placement = compute_placement(policy, flat, &matrix, 0);
            let pus = flat.pu_os_indices();
            placement.compute_mapping_with(|t| pus[t % pus.len()])
        }
    };

    let mut recorder = TraceRecorder::new(n);
    for phase in &workload.phases {
        let mut done = 0;
        while done < phase.iterations {
            let chunk = epoch_iterations.max(1).min(phase.iterations - done);
            orwl_cluster::exec::simulate_cluster(machine, &phase.graph, &mapping, chunk, &mut recorder);
            recorder.roll_epoch();
            done += chunk;
        }
    }
    recorder.finish(format!("cluster:{}:{}", machine.topology().name(), policy.name()))
}

/// An [`AccessSink`] that records the thread runtime's lock grants into
/// trace epochs, attributing traffic with the ORWL data-flow rule: a grant
/// of a location to task *t* moves that location's bytes from its **last
/// writer** to *t*.
///
/// The recorder observes whatever the runtime monitor emits — register it
/// with [`orwl_core::monitor::register_sink`] around a `Session` run, call
/// [`roll_epoch`](AccessTraceRecorder::roll_epoch) at the cadence you want,
/// then [`finish`](AccessTraceRecorder::finish).
pub struct AccessTraceRecorder {
    inner: Mutex<AccessState>,
    bytes_per_access: f64,
}

struct AccessState {
    task_index: Vec<TaskId>,
    last_writer: Vec<Option<TaskId>>,
    location_index: Vec<LocationId>,
    recorder: TraceRecorder,
}

impl AccessTraceRecorder {
    /// A recorder for `n_tasks` tasks, charging `bytes_per_access` per
    /// observed grant (the runtime reports grants, not byte counts).
    #[must_use]
    pub fn new(n_tasks: usize, bytes_per_access: f64) -> Self {
        AccessTraceRecorder {
            inner: Mutex::new(AccessState {
                task_index: Vec::new(),
                last_writer: Vec::new(),
                location_index: Vec::new(),
                recorder: TraceRecorder::new(n_tasks),
            }),
            bytes_per_access,
        }
    }

    /// Closes the current epoch (recorded with `iterations == 1`: the
    /// thread runtime has no iteration counter, so an epoch is the unit).
    pub fn roll_epoch(&self) {
        self.inner.lock().expect("access recorder poisoned").recorder.roll_epoch();
    }

    /// Finishes the recording into a [`Trace`] labelled `source`.
    #[must_use]
    pub fn finish(self, source: impl Into<String>) -> Trace {
        self.inner.into_inner().expect("access recorder poisoned").recorder.finish(source)
    }
}

impl AccessState {
    /// Dense index of `task` in arrival order (task ids are opaque).
    fn index_of(&mut self, task: TaskId) -> usize {
        if let Some(i) = self.task_index.iter().position(|&t| t == task) {
            return i;
        }
        self.task_index.push(task);
        self.task_index.len() - 1
    }

    fn location_slot(&mut self, location: LocationId) -> usize {
        if let Some(i) = self.location_index.iter().position(|&l| l == location) {
            return i;
        }
        self.location_index.push(location);
        self.last_writer.push(None);
        self.location_index.len() - 1
    }
}

impl AccessSink for AccessTraceRecorder {
    fn on_access(&self, task: TaskId, location: LocationId, mode: AccessMode) {
        let mut state = self.inner.lock().expect("access recorder poisoned");
        let slot = state.location_slot(location);
        let previous = state.last_writer[slot];
        let t = state.index_of(task);
        if t >= state.recorder.current.order() {
            return; // more tasks than declared: ignore the stragglers
        }
        if let Some(writer) = previous {
            let w = state.index_of(writer);
            if w != t && w < state.recorder.current.order() {
                state.recorder.current.add(w, t, self.bytes_per_access);
            }
        }
        if mode == AccessMode::Write {
            state.last_writer[slot] = Some(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioFamily, ScenarioSpec};
    use orwl_numasim::costmodel::CostParams;
    use orwl_topo::synthetic;

    fn machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
    }

    #[test]
    fn capture_records_every_iteration_and_phase() {
        let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42);
        let trace = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 4);
        assert_eq!(trace.n_tasks, 16);
        assert_eq!(trace.total_iterations(), spec.total_iterations());
        // 12 + 28 iterations in epochs of 4.
        assert_eq!(trace.epochs.len(), 10);
        assert!(trace.total_bytes() > 0.0);
        assert!(trace.source.contains("treematch"));
        // Epoch means equal the phase matrices the workload declared.
        let w = spec.workload();
        let first = trace.epochs[0].mean_matrix();
        let last = trace.epochs.last().unwrap().mean_matrix();
        assert_eq!(first, w.phases[0].graph.comm_matrix());
        assert_eq!(last, w.phases[1].graph.comm_matrix());
    }

    #[test]
    fn capture_is_deterministic() {
        let spec = ScenarioSpec::new(ScenarioFamily::PowerLaw, 16, 9);
        let a = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 5);
        let b = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn replayed_workload_mirrors_the_trace() {
        let spec = ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, 42);
        let trace = capture_trace(&machine(), Policy::TreeMatch, &spec.workload(), 4);
        let replay = trace.to_workload();
        assert_eq!(replay.phases.len(), trace.epochs.len());
        assert_eq!(replay.total_iterations(), trace.total_iterations());
        assert_eq!(replay.n_tasks(), 16);
        // Per-phase traffic of the replay equals the captured bytes.
        for (phase, epoch) in replay.phases.iter().zip(&trace.epochs) {
            let replay_bytes = phase.graph.comm_matrix().total_volume() * phase.iterations as f64;
            assert!((replay_bytes - epoch.matrix.total_volume()).abs() < 1e-6);
        }
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let spec = ScenarioSpec::new(ScenarioFamily::DriftMix, 16, 3);
        let trace = capture_trace(&machine(), Policy::Packed, &spec.workload(), 10);
        let json = trace.to_json();
        let text = json.pretty();
        let parsed = Trace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, trace);
        // Serialisation is byte-stable.
        assert_eq!(text, parsed.to_json().pretty());
    }

    #[test]
    fn from_json_rejects_malformed_traces() {
        let trace = Trace { n_tasks: 2, source: "t".into(), epochs: vec![] };
        let mut json = trace.to_json();
        assert!(Trace::from_json(&json).is_ok());
        json.push("format", "other/v9"); // later duplicate key is ignored by get()
        let mut bad_format = Json::obj();
        bad_format.push("format", "other/v9");
        assert!(Trace::from_json(&bad_format).unwrap_err().contains("unsupported"));
        assert!(Trace::from_json(&Json::obj()).unwrap_err().contains("format"));
        // Entry outside the task range.
        let text = r#"{"format":"orwl-lab-trace/v1","n_tasks":2,"source":"x",
                       "epochs":[{"iterations":1,"entries":[[5,0,1.0]]}]}"#;
        let err = Trace::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn access_recorder_attributes_reader_traffic_to_the_last_writer() {
        let recorder = AccessTraceRecorder::new(3, 64.0);
        let (t0, t1, t2) = (TaskId(0), TaskId(1), TaskId(2));
        let loc = LocationId(77);
        recorder.on_access(t0, loc, AccessMode::Write); // no writer yet: nothing
        recorder.on_access(t1, loc, AccessMode::Read); // t0 -> t1
        recorder.on_access(t2, loc, AccessMode::Read); // t0 -> t2
        recorder.on_access(t2, loc, AccessMode::Write); // t0 -> t2, t2 now owns
        recorder.roll_epoch();
        recorder.on_access(t0, loc, AccessMode::Read); // t2 -> t0, next epoch
        let trace = recorder.finish("unit");
        assert_eq!(trace.epochs.len(), 2);
        let first = &trace.epochs[0].matrix;
        assert_eq!(first.get(0, 1), 64.0);
        assert_eq!(first.get(0, 2), 128.0);
        assert_eq!(trace.epochs[1].matrix.get(2, 0), 64.0);
        assert_eq!(trace.n_tasks, 3);
    }
}
