//! The sweep runner: grid experiments over scenario × backend × policy ×
//! mode, executed through the one `Session` front door.
//!
//! A [`SweepConfig`] is a list of [`SweepSection`]s, each a full cross
//! product of its axes.  Every cell builds a `Session` for the requested
//! backend (real threads, the single-node NUMA simulator, or the
//! fabric-coupled cluster simulator — the latter at a chosen node count and
//! oversubscription factor), runs the compiled scenario, and lowers the
//! unified [`Report`] into a flat [`SweepRow`].
//!
//! Two baselines are always run per cell group, whether or not they are in
//! the policy list: `Scatter` (the OS-spread the paper measures against)
//! and flat `TreeMatch` (single-level placement, the bar two-level
//! placement must clear).  Each row carries its hop-bytes ratio against
//! both, so regressions read directly off `BENCH_lab.json`.
//!
//! Everything that reaches a row is deterministic for a fixed seed; the
//! only non-deterministic measurement (thread-backend wall time) is
//! deliberately *not* recorded.

use crate::scenario::ScenarioSpec;
use orwl_adapt::backend::SimBackend;
use orwl_adapt::engine::AdaptConfig;
use orwl_cluster::{ClusterBackend, ClusterMachine};
use orwl_core::error::OrwlError;
use orwl_core::runtime::AdaptiveSpec;
use orwl_core::session::{Mode, Report, Session, ThreadBackend};
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_obs::{ObsConfig, RunTelemetry};
use orwl_topo::binding::RecordingBinder;
use orwl_topo::synthetic;
use orwl_treematch::policies::Policy;
use std::sync::Arc;

/// Run modes of a sweep cell, lowered to [`Mode`] per backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Place once, never re-map.
    Static,
    /// The online monitor → drift → re-place loop (simulator backends).
    Adaptive,
    /// Free re-placement at every phase boundary (simulator backends).
    Oracle,
}

impl ModeKind {
    /// Machine-friendly name, identical to [`Mode::name`].
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ModeKind::Static => "static",
            ModeKind::Adaptive => "adaptive",
            ModeKind::Oracle => "oracle",
        }
    }

    fn to_mode(self, epoch_iterations: usize) -> Mode {
        match self {
            ModeKind::Static => Mode::Static,
            ModeKind::Adaptive => Mode::Adaptive(AdaptiveSpec::per_iterations(epoch_iterations)),
            ModeKind::Oracle => Mode::Oracle,
        }
    }
}

/// One execution substrate of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// The real thread runtime on the synthetic laptop topology (bindings
    /// recorded, not applied — CI machines are not the modelled machine).
    Threads,
    /// The single-node NUMA simulator on a `sockets`-socket subset of the
    /// paper's machine.
    NumaSim {
        /// Sockets of the simulated machine (8 cores each).
        sockets: usize,
    },
    /// The fabric-coupled cluster simulator.
    Cluster {
        /// Simulated nodes (2 sockets × 8 cores each).
        nodes: usize,
        /// Task multiplier: the scenario is resized to `factor × PUs`
        /// tasks (stencil families round up to the next square).
        oversubscription: usize,
    },
}

impl BackendSpec {
    /// The `Report::backend` name this spec produces.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match self {
            BackendSpec::Threads => "threads",
            BackendSpec::NumaSim { .. } => "numasim",
            BackendSpec::Cluster { .. } => "cluster",
        }
    }

    /// True when the backend can execute the mode.
    #[must_use]
    pub fn supports(&self, mode: ModeKind) -> bool {
        match self {
            // The thread backend has no oracle (no future knowledge) and
            // its adaptive mode needs an external controller — the sweep
            // sticks to static placement there.
            BackendSpec::Threads => mode == ModeKind::Static,
            BackendSpec::NumaSim { .. } | BackendSpec::Cluster { .. } => true,
        }
    }
}

/// One axis-complete block of the grid.
#[derive(Debug, Clone)]
pub struct SweepSection {
    /// Section label carried into every row (`"families"`,
    /// `"oversubscription"`…).
    pub label: &'static str,
    /// The scenario axis.
    pub scenarios: Vec<ScenarioSpec>,
    /// The backend axis.
    pub backends: Vec<BackendSpec>,
    /// The policy axis (Scatter and TreeMatch baselines are added
    /// automatically).
    pub policies: Vec<Policy>,
    /// The mode axis (filtered per backend by [`BackendSpec::supports`]).
    pub modes: Vec<ModeKind>,
}

/// A full sweep request.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seed shared by every seeded scenario generator.
    pub seed: u64,
    /// Iterations per adaptive monitoring epoch.
    pub epoch_iterations: usize,
    /// Lock acquisitions per task in thread-backend programs.
    pub thread_iterations: usize,
    /// The grid blocks.
    pub sections: Vec<SweepSection>,
}

impl SweepConfig {
    /// The CI-sized grid: every scenario family on all three backends plus
    /// a 1×/2× oversubscription block — small enough for a smoke job,
    /// complete enough to validate the whole pipeline.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            seed,
            epoch_iterations: 4,
            thread_iterations: 2,
            sections: vec![
                SweepSection {
                    label: "families",
                    scenarios: ScenarioSpec::catalog(16, seed),
                    backends: vec![
                        BackendSpec::Threads,
                        BackendSpec::NumaSim { sockets: 2 },
                        BackendSpec::Cluster { nodes: 2, oversubscription: 1 },
                    ],
                    policies: vec![Policy::Hierarchical, Policy::TreeMatch, Policy::Scatter, Policy::Packed],
                    modes: vec![ModeKind::Static, ModeKind::Adaptive],
                },
                Self::oversubscription_section(seed, 2, &[1, 2]),
            ],
        }
    }

    /// The full grid: adds the oracle mode, a 4-node cluster, and the
    /// 1×/2×/4× oversubscription factors of the ROADMAP's rack-aware
    /// sweep.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        SweepConfig {
            seed,
            epoch_iterations: 4,
            thread_iterations: 2,
            sections: vec![
                SweepSection {
                    label: "families",
                    scenarios: ScenarioSpec::catalog(16, seed),
                    backends: vec![
                        BackendSpec::Threads,
                        BackendSpec::NumaSim { sockets: 2 },
                        BackendSpec::Cluster { nodes: 2, oversubscription: 1 },
                        BackendSpec::Cluster { nodes: 4, oversubscription: 1 },
                    ],
                    policies: vec![Policy::Hierarchical, Policy::TreeMatch, Policy::Scatter, Policy::Packed],
                    modes: vec![ModeKind::Static, ModeKind::Adaptive, ModeKind::Oracle],
                },
                Self::oversubscription_section(seed, 2, &[1, 2, 4]),
            ],
        }
    }

    /// The ROADMAP's rack-aware oversubscription sweep as a built-in grid:
    /// the rotated-stencil scenario on an `nodes`-node cluster with tasks
    /// = `factor × PUs` for every factor, static placement, hierarchical
    /// vs the Scatter and flat-TreeMatch baselines.
    #[must_use]
    pub fn oversubscription_section(seed: u64, nodes: usize, factors: &[usize]) -> SweepSection {
        SweepSection {
            label: "oversubscription",
            scenarios: vec![ScenarioSpec::new(
                crate::scenario::ScenarioFamily::RotatedStencil,
                16, // resized per cluster instance; see BackendSpec::Cluster
                seed,
            )],
            backends: factors
                .iter()
                .map(|&oversubscription| BackendSpec::Cluster { nodes, oversubscription })
                .collect(),
            policies: vec![Policy::Hierarchical, Policy::TreeMatch, Policy::Scatter],
            modes: vec![ModeKind::Static],
        }
    }
}

/// One cell result: everything the JSON reporter needs, flat.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Section label of the grid block.
    pub section: &'static str,
    /// Scenario name (family, effective tasks, seed).
    pub scenario: String,
    /// Scenario family name.
    pub family: &'static str,
    /// Effective task count.
    pub tasks: usize,
    /// Backend name (`threads` / `numasim` / `cluster`).
    pub backend: &'static str,
    /// Topology name the session ran on.
    pub topology: String,
    /// Cluster node count (`None` off-cluster).
    pub nodes: Option<usize>,
    /// Oversubscription factor (`None` off-cluster).
    pub oversubscription: Option<usize>,
    /// Placement policy name.
    pub policy: &'static str,
    /// Run mode name.
    pub mode: &'static str,
    /// Cumulative hop-bytes (static plan metric on the thread backend).
    pub hop_bytes: f64,
    /// Simulated seconds; `None` on the thread backend (wall time is not
    /// reproducible and is deliberately excluded from the artifact).
    pub sim_seconds: Option<f64>,
    /// Fraction of the plan's traffic that stays NUMA-local.
    pub local_fraction: f64,
    /// Cumulative fabric hop-bytes (`None` off-cluster).
    pub inter_node_hop_bytes: Option<f64>,
    /// Fabric share of the cumulative hop-bytes (`None` off-cluster).
    pub inter_node_fraction: Option<f64>,
    /// Adaptive counters (`None` for non-adaptive runs).
    pub adapt_epochs: Option<u64>,
    /// Migrations applied by the adaptive loop.
    pub adapt_replacements: Option<u64>,
    /// Node-level re-shards among those migrations.
    pub adapt_node_reshards: Option<u64>,
    /// `hop_bytes / hop_bytes(Scatter)` within the same cell group.
    pub vs_scatter: Option<f64>,
    /// `hop_bytes / hop_bytes(flat TreeMatch)` within the same cell group.
    pub vs_flat_treematch: Option<f64>,
}

/// The result of [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The seed the grid ran with.
    pub seed: u64,
    /// One row per (section, scenario, backend, mode, policy) cell, in
    /// deterministic grid order.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Rows of one section.
    pub fn section<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a SweepRow> + 'a {
        self.rows.iter().filter(move |r| r.section == label)
    }
}

/// The effective task count of `spec` on `backend`: cluster backends
/// resize to `oversubscription × PUs` (stencil families round **up** to
/// the next square so the factor is honoured), other backends keep the
/// spec's own count.
fn resized_for(spec: &ScenarioSpec, backend: &BackendSpec) -> ScenarioSpec {
    match *backend {
        BackendSpec::Cluster { nodes, oversubscription } => {
            let pus = ClusterMachine::paper(nodes).n_pus();
            let requested = oversubscription.max(1) * pus;
            let tasks = if spec.family.is_square() {
                // Round *up* to the next square so the factor is honoured
                // (never fewer tasks than requested).
                let side = (requested as f64).sqrt().ceil() as usize;
                side * side
            } else {
                requested
            };
            spec.clone().with_tasks(tasks)
        }
        _ => spec.clone(),
    }
}

fn run_cell(
    config: &SweepConfig,
    backend: &BackendSpec,
    spec: &ScenarioSpec,
    policy: Policy,
    mode: ModeKind,
    observe: Option<ObsConfig>,
) -> Result<(Report, String), OrwlError> {
    let observed = |b: orwl_core::session::SessionBuilder| match observe {
        Some(cfg) => b.observe(cfg),
        None => b,
    };
    match *backend {
        BackendSpec::Threads => {
            let topology = synthetic::laptop();
            let name = topology.name().to_string();
            let session = observed(
                Session::builder()
                    .topology(topology)
                    .policy(policy)
                    .binder(Arc::new(RecordingBinder::new()))
                    .mode(mode.to_mode(config.epoch_iterations))
                    .backend(ThreadBackend),
            )
            .build()
            .expect("static thread session configuration is valid");
            Ok((session.run(spec.program(config.thread_iterations))?, name))
        }
        BackendSpec::NumaSim { sockets } => {
            let topology = synthetic::cluster2016_subset(sockets)
                .expect("sweep grids use socket counts within the paper machine");
            let machine = SimMachine::new(topology, CostParams::cluster2016());
            let name = machine.topology().name().to_string();
            let session = observed(
                Session::builder()
                    .topology(machine.topology().clone())
                    .policy(policy)
                    .control_threads(0)
                    .mode(mode.to_mode(config.epoch_iterations))
                    .backend(SimBackend::new(machine).with_adapt_config(AdaptConfig::evaluation())),
            )
            .build()
            .expect("simulator session configuration is valid");
            Ok((session.run(spec.workload())?, name))
        }
        BackendSpec::Cluster { nodes, .. } => {
            let machine = ClusterMachine::paper(nodes);
            let name = machine.topology().name().to_string();
            let session = observed(
                Session::builder()
                    .topology(machine.topology().clone())
                    .policy(policy)
                    .control_threads(0)
                    .mode(mode.to_mode(config.epoch_iterations))
                    .backend(ClusterBackend::new(machine).with_adapt_config(AdaptConfig::evaluation())),
            )
            .build()
            .expect("cluster session configuration is valid");
            Ok((session.run(spec.workload())?, name))
        }
    }
}

/// One executable cell of the flattened grid (see [`plan_cells`]).
struct PlannedCell {
    /// Index into `config.sections` (for the row's label).
    section: usize,
    backend: BackendSpec,
    /// The scenario, already resized for the backend.
    spec: ScenarioSpec,
    mode: ModeKind,
    policy: Policy,
    /// Ratio-group id: rows of one (section, backend, scenario, mode)
    /// share their Scatter / flat-TreeMatch anchors.
    group: usize,
}

/// Flattens the grid into cells in deterministic grid order: sections,
/// then backends, then scenarios, then modes, then policies (baselines
/// appended last within a group when they were not already on the axis).
fn plan_cells(config: &SweepConfig) -> Vec<PlannedCell> {
    let mut cells = Vec::new();
    let mut group = 0;
    for (section_idx, section) in config.sections.iter().enumerate() {
        // Scatter and flat TreeMatch always run: they anchor the ratios.
        let mut policies = section.policies.clone();
        for baseline in [Policy::Scatter, Policy::TreeMatch] {
            if !policies.contains(&baseline) {
                policies.push(baseline);
            }
        }
        for backend in &section.backends {
            for spec in &section.scenarios {
                let spec = resized_for(spec, backend);
                for &mode in section.modes.iter().filter(|&&m| backend.supports(m)) {
                    for &policy in &policies {
                        cells.push(PlannedCell {
                            section: section_idx,
                            backend: *backend,
                            spec: spec.clone(),
                            mode,
                            policy,
                            group,
                        });
                    }
                    group += 1;
                }
            }
        }
    }
    cells
}

/// The worker count [`run_sweep`] uses: the machine's available
/// parallelism, capped at 8 (cells are coarse; more workers only add
/// thread-backend oversubscription noise to *wall time*, never to
/// results).
#[must_use]
pub fn default_sweep_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
}

/// Executes the whole grid, baselines included, and computes the per-group
/// baseline ratios.  Rows appear in deterministic grid order: sections,
/// then backends, then scenarios, then modes, then policies (baselines
/// appended last within a group when they were not already on the axis).
///
/// Cells fan out over [`default_sweep_threads`] workers; see
/// [`run_sweep_with_threads`] for the determinism argument.
pub fn run_sweep(config: &SweepConfig) -> Result<SweepResult, OrwlError> {
    run_sweep_with_threads(config, default_sweep_threads())
}

/// [`run_sweep`] with an explicit worker count (`0` and `1` both mean
/// in-place sequential execution).
///
/// # Determinism
///
/// Cells are planned upfront in grid order and are mutually independent —
/// each builds its own `Session` on its own topology, and every recorded
/// quantity is either simulated time or a placement metric (wall time is
/// never recorded).  Workers pull cells from a shared counter and send
/// `(cell index, result)` back; rows are assembled *by cell index*, so the
/// row order and every value are independent of scheduling: the artifact
/// is byte-for-byte identical whatever `threads` is (pinned by the
/// `parallel_sweep` integration test and the CI `lab_smoke` `cmp`).
pub fn run_sweep_with_threads(config: &SweepConfig, threads: usize) -> Result<SweepResult, OrwlError> {
    Ok(sweep_impl(config, threads, None)?.0)
}

/// One observed cell of [`run_sweep_observed`]: the grid coordinates as a
/// filesystem-safe label, plus the run's full telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedCell {
    /// `section__scenario__backend__mode__policy`, sanitised to
    /// `[a-z0-9._-]` (safe as a file stem).
    pub label: String,
    /// The cell's `orwl-obs/v1` telemetry.
    pub telemetry: RunTelemetry,
}

/// [`run_sweep`] with observation enabled on every cell.
///
/// Cells run **sequentially**: observation installs a process-global
/// recorder (that is how the placement-solve spans emitted from inside
/// TreeMatch reach the cell's timeline), so concurrent cells would bleed
/// into each other's telemetry.  The rows are byte-identical to an
/// unobserved sweep — observation is read-only — which the `obs_sweep`
/// integration test pins.
pub fn run_sweep_observed(
    config: &SweepConfig,
    obs: ObsConfig,
) -> Result<(SweepResult, Vec<ObservedCell>), OrwlError> {
    sweep_impl(config, 1, Some(obs))
}

/// Filesystem-safe cell label: grid coordinates joined with `__`.
fn cell_label(config: &SweepConfig, cell: &PlannedCell) -> String {
    let raw = format!(
        "{}__{}__{}__{}__{}",
        config.sections[cell.section].label,
        cell.spec.name(),
        cell.backend.backend_name(),
        cell.mode.name(),
        cell.policy.name()
    );
    raw.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '.' | '_' | '-' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '-',
        })
        .collect()
}

fn sweep_impl(
    config: &SweepConfig,
    threads: usize,
    observe: Option<ObsConfig>,
) -> Result<(SweepResult, Vec<ObservedCell>), OrwlError> {
    let cells = plan_cells(config);
    let n = cells.len();

    // Execute every cell, results indexed by planned position.
    let mut results: Vec<Option<Result<(Report, String), OrwlError>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let workers = if observe.is_some() { 1 } else { threads.min(n) };
    if workers <= 1 {
        for (slot, cell) in results.iter_mut().zip(&cells) {
            *slot = Some(run_cell(config, &cell.backend, &cell.spec, cell.policy, cell.mode, observe));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, cells) = (&next, &cells);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = &cells[i];
                    let result = run_cell(config, &cell.backend, &cell.spec, cell.policy, cell.mode, None);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result) in rx {
                results[i] = Some(result);
            }
        });
    }

    // Assemble rows in planned order; a failed cell surfaces as the
    // sweep's error (the earliest in grid order, independent of which
    // worker hit it first).
    let mut rows = Vec::with_capacity(n);
    let mut observed = Vec::new();
    let mut group_start = 0;
    let mut scatter_hop = None;
    let mut treematch_hop = None;
    let ratio = |hop: f64, base: Option<f64>| base.and_then(|b| if b > 0.0 { Some(hop / b) } else { None });
    for (i, cell) in cells.iter().enumerate() {
        let (mut report, topology) =
            results[i].take().expect("every planned cell was executed exactly once")?;
        if let Some(telemetry) = report.obs.take() {
            observed.push(ObservedCell { label: cell_label(config, cell), telemetry });
        }
        if cell.policy == Policy::Scatter {
            scatter_hop = Some(report.hop_bytes);
        }
        if cell.policy == Policy::TreeMatch {
            treematch_hop = Some(report.hop_bytes);
        }
        let (nodes, oversubscription) = match cell.backend {
            BackendSpec::Cluster { nodes, oversubscription } => (Some(nodes), Some(oversubscription)),
            _ => (None, None),
        };
        rows.push(SweepRow {
            section: config.sections[cell.section].label,
            scenario: cell.spec.name(),
            family: cell.spec.family.name(),
            tasks: cell.spec.n_tasks(),
            backend: cell.backend.backend_name(),
            topology,
            nodes,
            oversubscription,
            policy: cell.policy.name(),
            mode: cell.mode.name(),
            hop_bytes: report.hop_bytes,
            sim_seconds: match report.time {
                orwl_core::session::RunTime::Simulated(s) => Some(s),
                orwl_core::session::RunTime::Wall(_) => None,
            },
            local_fraction: report.breakdown.local_fraction(),
            inter_node_hop_bytes: report.fabric.map(|f| f.inter_node_hop_bytes),
            inter_node_fraction: report.fabric.map(|f| f.inter_node_fraction()),
            adapt_epochs: report.adapt.as_ref().map(|a| a.epochs),
            adapt_replacements: report.adapt.as_ref().map(|a| a.replacements),
            adapt_node_reshards: report.adapt.as_ref().map(|a| a.node_reshards),
            vs_scatter: None,
            vs_flat_treematch: None,
        });
        // Anchor the group's ratios once its last cell (and therefore both
        // baselines) ran.
        let group_ends = cells.get(i + 1).is_none_or(|next| next.group != cell.group);
        if group_ends {
            for row in &mut rows[group_start..] {
                row.vs_scatter = ratio(row.hop_bytes, scatter_hop);
                row.vs_flat_treematch = ratio(row.hop_bytes, treematch_hop);
            }
            group_start = rows.len();
            scatter_hop = None;
            treematch_hop = None;
        }
    }
    Ok((SweepResult { seed: config.seed, rows }, observed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-cell grid for unit tests (integration tests exercise
    /// the real smoke grid).
    fn tiny() -> SweepConfig {
        SweepConfig {
            seed: 42,
            epoch_iterations: 4,
            thread_iterations: 1,
            sections: vec![SweepSection {
                label: "tiny",
                scenarios: vec![ScenarioSpec::new(crate::scenario::ScenarioFamily::DenseStencil, 16, 42)],
                backends: vec![BackendSpec::NumaSim { sockets: 2 }],
                policies: vec![Policy::TreeMatch],
                modes: vec![ModeKind::Static],
            }],
        }
    }

    #[test]
    fn baselines_are_always_present_with_ratios() {
        let result = run_sweep(&tiny()).unwrap();
        let policies: Vec<&str> = result.rows.iter().map(|r| r.policy).collect();
        assert_eq!(policies, vec!["treematch", "scatter"]);
        for row in &result.rows {
            let vs = row.vs_scatter.expect("scatter baseline ran");
            assert!(vs > 0.0 && vs.is_finite());
            assert!(row.vs_flat_treematch.unwrap() > 0.0);
            assert_eq!(row.section, "tiny");
            assert_eq!(row.backend, "numasim");
            assert!(row.nodes.is_none());
            assert!(row.sim_seconds.unwrap() > 0.0);
        }
        // TreeMatch never loses to Scatter on its own metric.
        let tm = &result.rows[0];
        assert!(tm.vs_scatter.unwrap() <= 1.0 + 1e-9);
        // The scatter row's self-ratio is exactly 1.
        assert!((result.rows[1].vs_scatter.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_sweep(&tiny()).unwrap();
        let b = run_sweep(&tiny()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_backends_resize_to_the_oversubscription_factor() {
        let spec = ScenarioSpec::new(crate::scenario::ScenarioFamily::Shuffle, 16, 1);
        let resized = resized_for(&spec, &BackendSpec::Cluster { nodes: 2, oversubscription: 2 });
        assert_eq!(resized.n_tasks(), 64); // 2 × 32 PUs
                                           // Non-square families take the requested count exactly — the
                                           // oversubscription label in the artifact is then literal.
        let one = resized_for(&spec, &BackendSpec::Cluster { nodes: 2, oversubscription: 1 });
        assert_eq!(one.n_tasks(), 32);
        let stencil = ScenarioSpec::new(crate::scenario::ScenarioFamily::DenseStencil, 16, 1);
        let resized = resized_for(&stencil, &BackendSpec::Cluster { nodes: 2, oversubscription: 2 });
        assert_eq!(resized.n_tasks(), 64); // ceil(sqrt(64))² = 64: factor honoured
        assert!(resized.n_tasks() >= 2 * 32);
        // Non-cluster backends keep the spec's own count.
        assert_eq!(resized_for(&spec, &BackendSpec::Threads).n_tasks(), 16);
    }

    #[test]
    fn thread_backend_skips_unsupported_modes() {
        assert!(BackendSpec::Threads.supports(ModeKind::Static));
        assert!(!BackendSpec::Threads.supports(ModeKind::Adaptive));
        assert!(!BackendSpec::Threads.supports(ModeKind::Oracle));
        assert!(BackendSpec::Cluster { nodes: 2, oversubscription: 1 }.supports(ModeKind::Oracle));
    }

    #[test]
    fn smoke_grid_covers_all_families_and_backends() {
        let smoke = SweepConfig::smoke(42);
        let families = &smoke.sections[0];
        assert!(families.scenarios.len() >= 6);
        let names: Vec<&str> = families.backends.iter().map(BackendSpec::backend_name).collect();
        assert_eq!(names, vec!["threads", "numasim", "cluster"]);
        assert_eq!(smoke.sections[1].label, "oversubscription");
    }
}
