//! The multi-node discrete-event execution engine.
//!
//! [`simulate_cluster`] plays an iterative task graph on a
//! [`ClusterMachine`]: every node behaves like the single-node NUMA model
//! of `orwl_numasim::exec` (compute + bandwidth-shared working-set
//! accesses + PU serialisation), and node-crossing halo edges become
//! **fabric messages** — a remote lock grant plus the location transfer —
//! paying the fabric's per-message latency and per-byte cost, with the sum
//! of all fabric bytes per iteration bounded by the fabric's aggregate
//! bandwidth.
//!
//! Data follows the first-touch-by-owner rule of the bound scenarios: a
//! task's working set lives on the node (and NUMA domain) of the PU it is
//! pinned to, which is exactly the invariant the two-level placement
//! guarantees (see `tests/proptests.rs`).

use crate::machine::ClusterMachine;
use orwl_numasim::exec::SimMonitor;
use orwl_numasim::taskgraph::TaskGraph;

/// Result of a cluster simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSimReport {
    /// Simulated wall-clock time of the whole run, in seconds.
    pub total_time: f64,
    /// Simulated wall-clock time of each iteration.
    pub iteration_times: Vec<f64>,
    /// Halo bytes per iteration staying inside a node.
    pub intra_node_bytes: f64,
    /// Halo bytes per iteration crossing the fabric.
    pub inter_node_bytes: f64,
    /// Fabric messages per iteration (remote lock grants / transfers).
    pub fabric_messages: usize,
    /// Label for reports.
    pub label: String,
}

impl ClusterSimReport {
    /// Mean iteration time.
    pub fn mean_iteration_time(&self) -> f64 {
        if self.iteration_times.is_empty() {
            0.0
        } else {
            self.iteration_times.iter().sum::<f64>() / self.iteration_times.len() as f64
        }
    }
}

/// Simulates `iterations` iterations of `graph` with every task pinned to
/// the *global* PU `task_pu[t]`, reporting every halo transfer to
/// `monitor` (task indices, like the single-node executor).
///
/// # Panics
/// Panics when `task_pu` does not cover every task of the graph or names a
/// PU outside the machine.
pub fn simulate_cluster(
    machine: &ClusterMachine,
    graph: &TaskGraph,
    task_pu: &[usize],
    iterations: usize,
    monitor: &mut dyn SimMonitor,
) -> ClusterSimReport {
    let n = graph.n_tasks();
    assert!(task_pu.len() >= n, "mapping covers {} tasks but the graph has {n}", task_pu.len());
    let cluster = machine.cluster();
    let node_sim = machine.node_machine();
    let params = node_sim.params();
    let fabric = machine.fabric();

    // --- Static per-placement quantities -----------------------------------
    // Working sets are first-touched by their pinned owner: the data's NUMA
    // domain is the executing PU's, and accessors sharing one memory
    // controller split its bandwidth.  Controllers are per (node, NUMA
    // domain) pair.
    let numa_domains_per_node = node_sim.n_nodes();
    let mut sharers = vec![0usize; cluster.n_nodes() * numa_domains_per_node];
    let domain_of = |g: usize| -> usize {
        cluster.node_of_pu(g) * numa_domains_per_node + node_sim.node_of_pu(cluster.local_pu(g))
    };
    for t in 0..n {
        sharers[domain_of(task_pu[t])] += 1;
    }

    let mut task_duration = vec![0.0f64; n];
    for (t, duration) in task_duration.iter_mut().enumerate() {
        let task = graph.task(t);
        let compute = task.elements * params.sec_per_element;
        let s = sharers[domain_of(task_pu[t])].max(1) as f64;
        let latency_limited = task.private_bytes * params.local_byte_cost;
        let controller_limited = task.private_bytes * s / params.node_bandwidth;
        *duration = compute + latency_limited.max(controller_limited);
    }

    // Per-edge halo time and the per-iteration traffic split.
    let mut edge_time = Vec::with_capacity(graph.edges().len());
    let mut intra_node_bytes = 0.0;
    let mut inter_node_bytes = 0.0;
    let mut fabric_messages = 0usize;
    // Bytes crossing each node's socket interconnect (intra-node halos that
    // cross NUMA domains, plus every fabric byte entering or leaving).
    let mut node_backplane_bytes = vec![0.0f64; cluster.n_nodes()];
    for e in graph.edges() {
        let (a, b) = (task_pu[e.src], task_pu[e.dst]);
        let (na, nb) = (cluster.node_of_pu(a), cluster.node_of_pu(b));
        if na == nb {
            intra_node_bytes += e.bytes;
            edge_time.push(e.bytes * node_sim.link_byte_cost(cluster.local_pu(a), cluster.local_pu(b)));
            if node_sim.node_of_pu(cluster.local_pu(a)) != node_sim.node_of_pu(cluster.local_pu(b)) {
                node_backplane_bytes[na] += e.bytes;
            }
        } else {
            inter_node_bytes += e.bytes;
            fabric_messages += 1;
            // One fabric message per halo per iteration: the remote lock
            // grant (latency) plus the location transfer (serialisation).
            edge_time.push(machine.message_latency(a, b) + e.bytes * machine.link_byte_cost(a, b));
            node_backplane_bytes[na] += e.bytes;
            node_backplane_bytes[nb] += e.bytes;
        }
    }

    // Per-iteration floors: no overlap trick can beat the fabric's
    // aggregate bandwidth, nor any single node's socket interconnect.
    let fabric_floor = inter_node_bytes / fabric.aggregate_bandwidth;
    let node_floor =
        node_backplane_bytes.iter().map(|b| b / params.interconnect_bandwidth).fold(0.0f64, f64::max);
    let iteration_floor = fabric_floor.max(node_floor);

    // Per-task incoming edge indices (to pair each edge with its time).
    let mut in_edges = vec![Vec::new(); n];
    for (k, e) in graph.edges().iter().enumerate() {
        in_edges[e.dst].push(k);
    }

    // --- Event-driven iteration loop ---------------------------------------
    let mut finish_prev = vec![0.0f64; n];
    let mut finish_cur = vec![0.0f64; n];
    let mut pu_free: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    let mut iteration_times = Vec::with_capacity(iterations);
    let mut clock = 0.0f64;

    for iter in 0..iterations {
        let mut ready: Vec<(f64, usize)> = (0..n)
            .map(|t| {
                let mut r: f64 = clock;
                for &k in &in_edges[t] {
                    let e = &graph.edges()[k];
                    monitor.on_transfer(iter, e.src, e.dst, e.bytes);
                    r = r.max(finish_prev[e.src] + edge_time[k]);
                }
                (r, t)
            })
            .collect();
        ready.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut iter_end = clock;
        for (ready_time, t) in ready {
            let pu = task_pu[t];
            let free = pu_free.get(&pu).copied().unwrap_or(0.0);
            let start = ready_time.max(free);
            let finish = start + task_duration[t];
            pu_free.insert(pu, finish);
            finish_cur[t] = finish;
            iter_end = iter_end.max(finish);
        }
        iter_end = iter_end.max(clock + iteration_floor);

        iteration_times.push(iter_end - clock);
        monitor.on_iteration_end(iter, iter_end - clock);
        clock = iter_end;
        std::mem::swap(&mut finish_prev, &mut finish_cur);
    }

    ClusterSimReport {
        total_time: clock,
        iteration_times,
        intra_node_bytes,
        inter_node_bytes,
        fabric_messages,
        label: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_numasim::exec::NoopSimMonitor;
    use orwl_numasim::taskgraph::{SimEdge, SimTask};

    fn pair_graph(bytes: f64) -> TaskGraph {
        TaskGraph::new(
            vec![SimTask { elements: 1000.0, private_bytes: 1024.0 }; 2],
            vec![SimEdge { src: 0, dst: 1, bytes }, SimEdge { src: 1, dst: 0, bytes }],
        )
    }

    #[test]
    fn fabric_crossings_are_slower_than_local_halos() {
        let m = ClusterMachine::paper(2);
        let g = pair_graph(64.0 * 1024.0);
        let local = simulate_cluster(&m, &g, &[0, 1], 10, &mut NoopSimMonitor);
        let cross = simulate_cluster(&m, &g, &[0, 16], 10, &mut NoopSimMonitor);
        assert!(cross.total_time > 2.0 * local.total_time, "{} vs {}", cross.total_time, local.total_time);
        assert_eq!(local.inter_node_bytes, 0.0);
        assert_eq!(local.fabric_messages, 0);
        assert_eq!(cross.inter_node_bytes, 2.0 * 64.0 * 1024.0);
        assert_eq!(cross.fabric_messages, 2);
        assert_eq!(cross.intra_node_bytes, 0.0);
    }

    #[test]
    fn latency_dominates_small_fabric_messages() {
        let m = ClusterMachine::paper(2);
        let g = pair_graph(8.0); // tiny halos: latency-bound across the fabric
        let cross = simulate_cluster(&m, &g, &[0, 16], 5, &mut NoopSimMonitor);
        let latency = m.fabric().same_rack.latency;
        assert!(cross.mean_iteration_time() >= latency, "{} < {latency}", cross.mean_iteration_time());
    }

    #[test]
    fn aggregate_fabric_bandwidth_floors_the_iteration() {
        // Huge all-to-all across 2 nodes: the cut cannot move faster than
        // the aggregate fabric bandwidth.
        let m = ClusterMachine::paper(2);
        let n = 8;
        let tasks = vec![SimTask { elements: 1.0, private_bytes: 1.0 }; n];
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push(SimEdge { src: i, dst: j, bytes: 1.0e8 });
                }
            }
        }
        let g = TaskGraph::new(tasks, edges);
        let mapping: Vec<usize> = (0..n).map(|t| if t < 4 { t } else { 16 + t - 4 }).collect();
        let r = simulate_cluster(&m, &g, &mapping, 1, &mut NoopSimMonitor);
        let floor = r.inter_node_bytes / m.fabric().aggregate_bandwidth;
        assert!(r.total_time >= floor);
        assert!(r.inter_node_bytes > 0.0);
    }

    #[test]
    fn pu_serialisation_applies_globally() {
        let m = ClusterMachine::paper(2);
        let tasks = vec![SimTask { elements: 1.0e6, private_bytes: 0.0 }; 4];
        let g = TaskGraph::new(tasks, vec![]);
        let stacked = simulate_cluster(&m, &g, &[0, 0, 0, 0], 3, &mut NoopSimMonitor);
        let spread = simulate_cluster(&m, &g, &[0, 1, 16, 17], 3, &mut NoopSimMonitor);
        assert!(stacked.total_time > 3.0 * spread.total_time);
    }

    #[test]
    fn monitor_sees_every_halo_edge() {
        struct Count(usize);
        impl SimMonitor for Count {
            fn on_transfer(&mut self, _i: usize, _s: usize, _d: usize, _b: f64) {
                self.0 += 1;
            }
        }
        let m = ClusterMachine::paper(2);
        let g = pair_graph(1024.0);
        let mut c = Count(0);
        simulate_cluster(&m, &g, &[0, 16], 7, &mut c);
        assert_eq!(c.0, 2 * 7);
    }

    #[test]
    #[should_panic]
    fn mapping_must_cover_the_graph() {
        let m = ClusterMachine::paper(2);
        let g = pair_graph(1.0);
        simulate_cluster(&m, &g, &[0], 1, &mut NoopSimMonitor);
    }
}
