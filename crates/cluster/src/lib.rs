//! # orwl-cluster — hierarchical multi-node backend with two-level
//! topology-aware placement
//!
//! The source paper (CLUSTER 2016) targets cluster-scale ORWL; this crate
//! takes the reproduction beyond one shared-memory machine.  It has three
//! layers:
//!
//! 1. **Hierarchical topology** — [`ClusterMachine`] wraps a
//!    [`ClusterTopology`](orwl_topo::cluster::ClusterTopology) (cluster →
//!    node → socket/NUMA → core) with the single-node NUMA cost model and
//!    the inter-node fabric cost model
//!    ([`FabricParams`](orwl_numasim::costmodel::FabricParams): latency +
//!    bandwidth per link class, rack-aware).
//! 2. **Two-level placement** — [`hierarchical_placement`] shards the task
//!    graph across nodes minimising the fabric-weighted inter-node cut
//!    ([`mod@orwl_treematch::partition`]), then runs the paper's TreeMatch
//!    *inside* each node; surfaced through the unified `Session` API as
//!    [`Policy::Hierarchical`](orwl_treematch::policies::Policy).
//! 3. **Execution** — [`exec::simulate_cluster`], a
//!    discrete-event multi-node simulator (per-node NUMA machines coupled
//!    by fabric messages for remote lock grants and location transfers),
//!    plugged in as the third `ExecutionBackend`: [`ClusterBackend`].
//!    Reports carry the inter-node vs intra-node traffic split
//!    (`Report::fabric`, `TrafficBreakdown::cross_node`), and adaptive
//!    runs can re-shard across nodes on drift
//!    (`AdaptReport::node_reshards`).
//!
//! ```
//! use orwl_cluster::{ClusterBackend, ClusterMachine};
//! use orwl_core::session::{Mode, Session};
//! use orwl_numasim::workload::PhasedWorkload;
//! use orwl_treematch::policies::Policy;
//!
//! let machine = ClusterMachine::paper(4); // 4 nodes × 2 sockets × 8 cores
//! let session = Session::builder()
//!     .topology(machine.topology().clone())
//!     .policy(Policy::Hierarchical)
//!     .control_threads(0)
//!     .backend(ClusterBackend::new(machine))
//!     .build()
//!     .unwrap();
//! let workload = PhasedWorkload::rotating_stencil(8, 65536.0, 1024.0, 16384.0, 131072.0, &[4]);
//! let report = session.run(workload).unwrap();
//! let fabric = report.fabric.unwrap();
//! assert_eq!(fabric.n_nodes, 4);
//! assert!(fabric.inter_node_fraction() < 0.5);
//! ```

pub mod backend;
pub mod exec;
pub mod machine;
pub mod metrics;
pub mod placement;

pub use backend::ClusterBackend;
pub use exec::{simulate_cluster, ClusterSimReport};
pub use machine::ClusterMachine;
pub use metrics::{cluster_cost, inter_node_bytes, split_hop_bytes};
pub use placement::{hierarchical_placement, policy_placement, reshard_after_node_loss, ClusterPlacement};
