//! The multi-node cluster as a `Session` [`ExecutionBackend`].
//!
//! [`ClusterBackend`] is the third backend behind the unified `Session`
//! front door (after `ThreadBackend` and `SimBackend`): build the session
//! with the cluster's [flattened](orwl_topo::cluster::ClusterTopology::flatten)
//! topology and a `ClusterBackend`, and run phased workloads unchanged.
//!
//! * **Static** — two-level placement from the first phase's matrix
//!   ([`Policy::Hierarchical`]; flat policies are mapped onto the
//!   flattened tree), never re-mapped.
//! * **Oracle** — free two-level re-placement at every phase boundary.
//! * **Adaptive** — the online loop of `orwl-adapt` lifted to cluster
//!   scale: the executor's transfer hooks feed an `OnlineCommMatrix`,
//!   drift is detected on the flattened topology, and a re-placement is a
//!   fresh *two-level* computation — so drift can trigger **node-level
//!   re-sharding** (tasks change machines, paying fabric transfer costs)
//!   as well as intra-node re-binding.  The two are reported separately
//!   ([`AdaptReport::node_reshards`] vs
//!   [`AdaptReport::replacements`](orwl_core::runtime::AdaptReport)).

use crate::exec::simulate_cluster;
use crate::machine::ClusterMachine;
use crate::metrics::{cluster_cost, inter_node_bytes, split_hop_bytes};
use crate::placement::{hierarchical_placement, policy_placement, ClusterPlacement};
use orwl_adapt::drift::DriftDetector;
use orwl_adapt::engine::AdaptConfig;
use orwl_adapt::online::OnlineCommMatrix;
use orwl_comm::matrix::CommMatrix;
use orwl_core::error::{ConfigError, OrwlError};
use orwl_core::placement::PlacementPlan;
use orwl_core::runtime::AdaptReport;
use orwl_core::session::{ClusterTraffic, ExecutionBackend, Mode, Report, RunTime, SessionConfig, Workload};
use orwl_numasim::workload::PhasedWorkload;
use orwl_obs::{ClockKind, EventKind, FabricLane, Recorder};
use orwl_topo::cluster::FabricClass;
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::Policy;

fn lane_of(class: FabricClass) -> FabricLane {
    match class {
        FabricClass::SameNode => FabricLane::SameNode,
        FabricClass::SameRack => FabricLane::SameRack,
        FabricClass::CrossRack => FabricLane::CrossRack,
    }
}

/// Cumulative counters of one cluster run.
#[derive(Debug, Clone, Copy, Default)]
struct RunTotals {
    time: f64,
    hop_bytes: f64,
    intra_hop_bytes: f64,
    inter_hop_bytes: f64,
    inter_bytes: f64,
}

/// The multi-node discrete-event simulator as a `Session` backend.
#[derive(Debug, Clone)]
pub struct ClusterBackend {
    machine: ClusterMachine,
    adapt: AdaptConfig,
    nobind_seed: u64,
}

impl ClusterBackend {
    /// Wraps a cluster machine with the default adaptive tuning.
    #[must_use]
    pub fn new(machine: ClusterMachine) -> Self {
        ClusterBackend { machine, adapt: AdaptConfig::default(), nobind_seed: 0xC0FFEE }
    }

    /// Replaces the engine tuning used in adaptive mode.
    #[must_use]
    pub fn with_adapt_config(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }

    /// Replaces the seed of the OS-placement model used for
    /// [`Policy::NoBind`] runs.
    #[must_use]
    pub fn with_nobind_seed(mut self, seed: u64) -> Self {
        self.nobind_seed = seed;
        self
    }

    /// The simulated cluster machine.
    #[must_use]
    pub fn machine(&self) -> &ClusterMachine {
        &self.machine
    }

    /// The two-level placement of this run's policy — shared with the
    /// multi-process backend through
    /// [`policy_placement`](crate::placement::policy_placement), so
    /// simulated and real runs shard tasks over nodes identically.
    /// `NoBind` mirrors `SimBackend`'s OS-spread model (migration
    /// penalties and data non-locality are not modelled at cluster scale).
    fn placement_for(&self, config: &SessionConfig, matrix: &CommMatrix) -> ClusterPlacement {
        policy_placement(&self.machine, config.policy, config.control_threads, self.nobind_seed, matrix)
    }

    /// One simulated phase chunk, with its metrics folded into `totals`.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk(
        &self,
        cp: &ClusterPlacement,
        graph: &orwl_numasim::taskgraph::TaskGraph,
        matrix: &CommMatrix,
        iterations: usize,
        monitor: &mut dyn orwl_numasim::exec::SimMonitor,
        totals: &mut RunTotals,
        obs: Option<&Recorder>,
    ) {
        let mapping = cp.global_mapping(&self.machine);
        let report = simulate_cluster(&self.machine, graph, &mapping, iterations, monitor);
        let (intra, inter) = split_hop_bytes(self.machine.cluster(), matrix, &mapping);
        let iters = iterations as f64;
        totals.time += report.total_time;
        totals.hop_bytes += iters * (intra + inter);
        totals.intra_hop_bytes += iters * intra;
        totals.inter_hop_bytes += iters * inter;
        totals.inter_bytes += iters * inter_node_bytes(self.machine.cluster(), matrix, &mapping);
        if let Some(obs) = obs {
            // One aggregate transfer event per fabric lane per chunk: the
            // timeline stays proportional to chunks, not to matrix entries.
            let cluster = self.machine.cluster();
            let mut by_lane = [0.0f64; 3];
            let n = matrix.order();
            for src in 0..n {
                for dst in 0..n {
                    let volume = matrix.get(src, dst);
                    if src != dst && volume > 0.0 {
                        by_lane[lane_of(cluster.link_class(mapping[src], mapping[dst])) as usize] +=
                            iters * volume;
                    }
                }
            }
            obs.set_sim_now(totals.time);
            for (lane, &bytes) in
                [FabricLane::SameNode, FabricLane::SameRack, FabricLane::CrossRack].iter().zip(&by_lane)
            {
                if bytes > 0.0 {
                    obs.record(EventKind::FabricTransfer { lane: *lane, bytes });
                }
            }
        }
    }

    /// Static and oracle modes: a fixed placement schedule, re-computed per
    /// phase only for the oracle.
    fn run_fixed_schedule(
        &self,
        config: &SessionConfig,
        workload: &PhasedWorkload,
        oracle: bool,
        obs: Option<&Recorder>,
    ) -> (ClusterPlacement, RunTotals) {
        let initial = self.placement_for(config, &workload.phases[0].graph.comm_matrix().symmetrized());
        let mut totals = RunTotals::default();
        for (k, phase) in workload.phases.iter().enumerate() {
            let cp = if oracle && k > 0 {
                self.placement_for(config, &phase.graph.comm_matrix().symmetrized())
            } else {
                initial.clone()
            };
            let matrix = phase.graph.comm_matrix();
            let before = totals.hop_bytes;
            self.run_chunk(
                &cp,
                &phase.graph,
                &matrix,
                phase.iterations,
                &mut orwl_numasim::exec::NoopSimMonitor,
                &mut totals,
                obs,
            );
            if let Some(obs) = obs {
                obs.set_sim_now(totals.time);
                obs.record(EventKind::Epoch { epoch: k as u64 + 1, bytes: totals.hop_bytes - before });
            }
        }
        (initial, totals)
    }

    /// The online loop lifted to cluster scale: monitor → epoch roll →
    /// drift detection → two-level re-placement with a fabric-aware
    /// migration budget.
    fn run_adaptive(
        &self,
        config: &SessionConfig,
        workload: &PhasedWorkload,
        epoch_iterations: usize,
        obs: Option<&Recorder>,
    ) -> (ClusterPlacement, RunTotals, AdaptReport) {
        let n = workload.n_tasks();
        let flat = self.machine.topology();
        let initial = self.placement_for(config, &workload.phases[0].graph.comm_matrix().symmetrized());
        let mut current = initial.clone();
        let mut baseline = workload.phases[0].graph.comm_matrix().symmetrized();
        let mut online = OnlineCommMatrix::new(n, self.adapt.decay);
        let mut detector = DriftDetector::new(self.adapt.drift);
        let replacer = self.adapt.replacer;

        let mut totals = RunTotals::default();
        let mut epochs = 0u64;
        let mut replacements = 0u64;
        let mut node_reshards = 0u64;
        let mut drift_deltas = Vec::new();

        for phase in &workload.phases {
            let matrix = phase.graph.comm_matrix();
            let mut done = 0usize;
            while done < phase.iterations {
                let chunk = epoch_iterations.min(phase.iterations - done);
                let mut monitor = Recording { online: &mut online, bytes: 0.0 };
                self.run_chunk(&current, &phase.graph, &matrix, chunk, &mut monitor, &mut totals, obs);
                let chunk_bytes = monitor.bytes;
                done += chunk;

                epochs += 1;
                online.roll_epoch();
                if let Some(obs) = obs {
                    obs.set_sim_now(totals.time);
                    obs.record(EventKind::Epoch { epoch: epochs, bytes: chunk_bytes });
                }
                if !online.is_warmed_up() {
                    continue;
                }
                let live = online.smoothed_symmetric();
                let mapping = current.global_mapping(&self.machine);
                let observation = detector.observe(flat, &mapping, &baseline, &live);
                drift_deltas.push(observation.delta);
                if let Some(obs) = obs {
                    obs.record(EventKind::DriftDecision {
                        outcome: observation.outcome(),
                        delta: observation.delta,
                    });
                }
                if !observation.fired {
                    continue;
                }

                // Re-placement is a fresh two-level computation, so node
                // assignment and intra-node binding can both change.
                let candidate = hierarchical_placement(&self.machine, &live);
                let new_mapping = candidate.global_mapping(&self.machine);
                let current_cost = cluster_cost(&self.machine, &live, &mapping);
                let candidate_cost = cluster_cost(&self.machine, &live, &new_mapping);
                let gain_per_iteration = current_cost - candidate_cost;
                if gain_per_iteration <= 0.0
                    || (current_cost > 0.0 && gain_per_iteration / current_cost < replacer.min_relative_gain)
                {
                    continue;
                }
                // Migration bill in seconds: every re-bound task streams its
                // state over the link between its old and new PU (fabric
                // latency + bandwidth across nodes, NUMA links within one).
                // The moved bytes are also traffic, split at the machine
                // boundary like any other, so the reported fabric split
                // stays consistent with the cumulative hop-bytes.
                let mut migration_seconds = 0.0;
                let mut migration_intra_hop = 0.0;
                let mut migration_inter_hop = 0.0;
                let mut migration_inter_bytes = 0.0;
                let mut moved_nodes = false;
                let mut tasks_moved = 0usize;
                for (t, (&old_pu, &new_pu)) in mapping.iter().zip(&new_mapping).enumerate() {
                    if old_pu == new_pu {
                        continue;
                    }
                    tasks_moved += 1;
                    let bytes = replacer.model.task_state_bytes;
                    migration_seconds += self.machine.message_latency(old_pu, new_pu)
                        + bytes * self.machine.link_byte_cost(old_pu, new_pu);
                    let hop_bytes = bytes * flat.hop_distance(old_pu, new_pu) as f64;
                    if candidate.node_of_task[t] != current.node_of_task[t] {
                        moved_nodes = true;
                        migration_inter_hop += hop_bytes;
                        migration_inter_bytes += bytes;
                    } else {
                        migration_intra_hop += hop_bytes;
                    }
                }
                let horizon_iterations = replacer.horizon_epochs * epoch_iterations as f64;
                if gain_per_iteration * horizon_iterations <= migration_seconds {
                    continue;
                }
                totals.time += migration_seconds;
                totals.hop_bytes += migration_intra_hop + migration_inter_hop;
                totals.intra_hop_bytes += migration_intra_hop;
                totals.inter_hop_bytes += migration_inter_hop;
                totals.inter_bytes += migration_inter_bytes;
                if let Some(obs) = obs {
                    obs.set_sim_now(totals.time);
                    obs.record(EventKind::Migration {
                        tasks_moved,
                        bytes: tasks_moved as f64 * replacer.model.task_state_bytes,
                        cross_node: moved_nodes,
                    });
                }
                current = candidate;
                baseline = live.clone();
                detector.arm_cooldown();
                replacements += 1;
                if moved_nodes {
                    node_reshards += 1;
                }
            }
        }
        let adapt = AdaptReport { epochs, replacements, rebinds_applied: 0, node_reshards, drift_deltas };
        (initial, totals, adapt)
    }
}

struct Recording<'a> {
    online: &'a mut OnlineCommMatrix,
    /// Bytes the executor reported this chunk — the epoch event's traffic
    /// volume in the telemetry timeline.
    bytes: f64,
}

impl orwl_numasim::exec::SimMonitor for Recording<'_> {
    fn on_transfer(&mut self, _iteration: usize, src: usize, dst: usize, bytes: f64) {
        self.online.record(src, dst, bytes);
        self.bytes += bytes;
    }
}

impl ExecutionBackend for ClusterBackend {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn run(&self, config: &SessionConfig, workload: Workload) -> Result<Report, OrwlError> {
        let Workload::Phased(workload) = workload else {
            return Err(ConfigError::WorkloadMismatch {
                backend: self.name().to_string(),
                expected: "phased".to_string(),
            }
            .into());
        };
        let modelled = self.machine.topology();
        if config.topology.name() != modelled.name()
            || config.topology.nb_pus() != modelled.nb_pus()
            || config.topology.level_spec() != modelled.level_spec()
        {
            return Err(ConfigError::TopologyMismatch {
                backend: self.name().to_string(),
                expected: modelled.name().to_string(),
                got: config.topology.name().to_string(),
            }
            .into());
        }
        // Simulated clock, installed globally so the two-level placement
        // solves (which run through TreeMatch) land their phase spans in
        // the same timeline as the fabric and drift events.
        let recorder = config.observe.map(|cfg| Recorder::new(ClockKind::Simulated, cfg));
        let registration = recorder.as_ref().map(orwl_obs::install);
        let (initial, totals, adapt) = match &config.mode {
            Mode::Static => {
                let (cp, totals) = self.run_fixed_schedule(config, &workload, false, recorder.as_deref());
                (cp, totals, None)
            }
            Mode::Oracle => {
                let (cp, totals) = self.run_fixed_schedule(config, &workload, true, recorder.as_deref());
                (cp, totals, None)
            }
            Mode::Adaptive(spec) => {
                if spec.controller.is_some() {
                    return Err(
                        ConfigError::UnsupportedController { backend: self.name().to_string() }.into()
                    );
                }
                let (cp, totals, adapt) =
                    self.run_adaptive(config, &workload, spec.epoch_iterations, recorder.as_deref());
                (cp, totals, Some(adapt))
            }
        };
        drop(registration);
        let matrix = workload.phases[0].graph.comm_matrix().symmetrized();
        // The plan reports what the *policy* binds: for `NoBind` that is
        // nothing (the OS-spread execution model above is not a binding),
        // exactly as the other backends report it.
        let placement = match config.policy {
            Policy::NoBind => Placement::unbound(matrix.order(), config.control_threads),
            _ => {
                let mut p = initial.placement;
                p.control = vec![None; config.control_threads];
                p
            }
        };
        let plan = PlacementPlan::new(config.policy, matrix, placement);
        let breakdown = plan.breakdown(&config.topology);
        Ok(Report {
            backend: self.name().to_string(),
            mode: config.mode.name(),
            time: RunTime::Simulated(totals.time),
            plan,
            breakdown,
            hop_bytes: totals.hop_bytes,
            adapt,
            thread: None,
            fabric: Some(ClusterTraffic {
                n_nodes: self.machine.n_nodes(),
                intra_node_hop_bytes: totals.intra_hop_bytes,
                inter_node_hop_bytes: totals.inter_hop_bytes,
                inter_node_bytes: totals.inter_bytes,
            }),
            obs: recorder.map(|r| r.finish(self.name())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_core::runtime::AdaptiveSpec;
    use orwl_core::session::Session;

    fn machine() -> ClusterMachine {
        ClusterMachine::paper(4)
    }

    fn session(policy: Policy, mode: Mode) -> Session {
        Session::builder()
            .topology(machine().topology().clone())
            .policy(policy)
            .control_threads(0)
            .mode(mode)
            .backend(ClusterBackend::new(machine()).with_adapt_config(AdaptConfig::evaluation()))
            .build()
            .unwrap()
    }

    fn workload(phases: &[usize]) -> PhasedWorkload {
        PhasedWorkload::rotating_stencil(8, 65536.0, 1024.0, 16384.0, 131072.0, phases)
    }

    #[test]
    fn reports_carry_the_fabric_split() {
        let report = session(Policy::Hierarchical, Mode::Static).run(workload(&[10])).unwrap();
        assert_eq!(report.backend, "cluster");
        let fabric = report.fabric.expect("cluster runs report the fabric split");
        assert_eq!(fabric.n_nodes, 4);
        assert!(fabric.intra_node_hop_bytes > 0.0);
        assert!((fabric.intra_node_hop_bytes + fabric.inter_node_hop_bytes - report.hop_bytes).abs() < 1e-6);
        // The plan-level breakdown splits the same boundary.
        assert!(report.breakdown.cross_node > 0.0 || fabric.inter_node_hop_bytes == 0.0);
        assert!(report.time.seconds() > 0.0);
        assert!(report.time.as_wall().is_none());
    }

    #[test]
    fn hierarchical_cuts_less_fabric_traffic_than_scatter() {
        let w = workload(&[10]);
        let hier = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
        let scatter = session(Policy::Scatter, Mode::Static).run(w).unwrap();
        let (hf, sf) = (hier.fabric.unwrap(), scatter.fabric.unwrap());
        assert!(
            hf.inter_node_hop_bytes < sf.inter_node_hop_bytes,
            "hierarchical {} vs scatter {}",
            hf.inter_node_hop_bytes,
            sf.inter_node_hop_bytes
        );
        assert!(hier.time.seconds() < scatter.time.seconds());
    }

    #[test]
    fn oracle_is_a_lower_bound_for_static() {
        let w = workload(&[12, 60]);
        let fixed = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
        let oracle = session(Policy::Hierarchical, Mode::Oracle).run(w).unwrap();
        assert!(oracle.hop_bytes <= fixed.hop_bytes + 1e-9);
        assert!(oracle.time.seconds() <= fixed.time.seconds() * 1.0001);
    }

    #[test]
    fn adaptive_reshards_across_nodes_on_drift() {
        let w = workload(&[12, 100]);
        let fixed = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
        let adaptive =
            session(Policy::Hierarchical, Mode::Adaptive(AdaptiveSpec::per_iterations(4))).run(w).unwrap();
        let adapt = adaptive.adapt.expect("adaptive runs report counters");
        assert!(adapt.replacements >= 1, "drift must trigger a migration: {adapt:?}");
        assert!(adapt.node_reshards >= 1, "the rotation must re-shard across nodes: {adapt:?}");
        assert!(adapt.node_reshards <= adapt.replacements);
        // The fabric split stays consistent with the cumulative hop-bytes
        // even with migration traffic folded in.
        let fabric = adaptive.fabric.expect("cluster runs report the fabric split");
        assert!(
            (fabric.intra_node_hop_bytes + fabric.inter_node_hop_bytes - adaptive.hop_bytes).abs() < 1e-6,
            "split {} + {} != total {}",
            fabric.intra_node_hop_bytes,
            fabric.inter_node_hop_bytes,
            adaptive.hop_bytes
        );
        assert!(
            adaptive.hop_bytes < fixed.hop_bytes,
            "adaptive {} must beat static {}",
            adaptive.hop_bytes,
            fixed.hop_bytes
        );
    }

    #[test]
    fn nobind_models_the_os_spread_not_packed_pinning() {
        let w = workload(&[6]);
        let nobind = session(Policy::NoBind, Mode::Static).run(w.clone()).unwrap();
        let packed = session(Policy::Packed, Mode::Static).run(w).unwrap();
        // The plan binds nothing — NoBind is the unbound baseline.
        assert_eq!(nobind.plan.placement.bound_fraction(), 0.0);
        // The execution model is a seeded random spread, not packed order:
        // it pays more fabric traffic than the locality-blind-but-contiguous
        // packed placement on this stencil.
        let (nf, pf) = (nobind.fabric.unwrap(), packed.fabric.unwrap());
        assert!(
            nf.inter_node_hop_bytes > pf.inter_node_hop_bytes,
            "nobind {} should shred locality vs packed {}",
            nf.inter_node_hop_bytes,
            pf.inter_node_hop_bytes
        );
        // Reproducible per seed, different across seeds.
        let again = session(Policy::NoBind, Mode::Static).run(workload(&[6])).unwrap();
        assert_eq!(again.hop_bytes, nobind.hop_bytes);
        let reseeded = Session::builder()
            .topology(machine().topology().clone())
            .policy(Policy::NoBind)
            .control_threads(0)
            .backend(ClusterBackend::new(machine()).with_nobind_seed(7))
            .build()
            .unwrap()
            .run(workload(&[6]))
            .unwrap();
        assert_ne!(reseeded.hop_bytes, nobind.hop_bytes);
    }

    #[test]
    fn mismatched_topology_and_workload_are_rejected() {
        let err =
            session(Policy::Hierarchical, Mode::Static).run(orwl_core::task::OrwlProgram::new()).unwrap_err();
        assert_eq!(err, OrwlError::Config(ConfigError::EmptyProgram));
        let mut program = orwl_core::task::OrwlProgram::new();
        program.add_task(orwl_core::task::TaskSpec::new("t", vec![]), |_| {});
        match session(Policy::Hierarchical, Mode::Static).run(program).unwrap_err() {
            OrwlError::Config(ConfigError::WorkloadMismatch { backend, expected }) => {
                assert_eq!(backend, "cluster");
                assert_eq!(expected, "phased");
            }
            other => panic!("expected WorkloadMismatch, got {other:?}"),
        }
        let wrong_topo = Session::builder()
            .topology(orwl_topo::synthetic::laptop())
            .control_threads(0)
            .backend(ClusterBackend::new(machine()))
            .build()
            .unwrap();
        match wrong_topo.run(workload(&[2])).unwrap_err() {
            OrwlError::Config(ConfigError::TopologyMismatch { backend, got, .. }) => {
                assert_eq!(backend, "cluster");
                assert_eq!(got, "laptop");
            }
            other => panic!("expected TopologyMismatch, got {other:?}"),
        }
    }

    #[test]
    fn controller_bearing_specs_are_rejected() {
        let engine = orwl_adapt::engine::AdaptiveEngine::new(AdaptConfig::default());
        let spec = orwl_adapt::engine::adaptive_session_spec(engine, std::time::Duration::from_millis(5));
        let session = Session::builder()
            .topology(machine().topology().clone())
            .control_threads(0)
            .adaptive(spec)
            .backend(ClusterBackend::new(machine()))
            .build()
            .unwrap();
        match session.run(workload(&[2])).unwrap_err() {
            OrwlError::Config(ConfigError::UnsupportedController { backend }) => {
                assert_eq!(backend, "cluster")
            }
            other => panic!("expected UnsupportedController, got {other:?}"),
        }
    }
}
