//! The simulated cluster: a hierarchical topology, a per-node cost model
//! and an inter-node fabric cost model.

use orwl_numasim::costmodel::{CostParams, FabricParams};
use orwl_numasim::machine::SimMachine;
use orwl_topo::cluster::{paper_cluster, ClusterTopology, FabricClass};
use orwl_topo::topology::Topology;

/// A simulated multi-node machine: every node is one [`SimMachine`] (the
/// single-node NUMA model), and nodes exchange fabric messages priced by
/// [`FabricParams`].
#[derive(Debug, Clone)]
pub struct ClusterMachine {
    cluster: ClusterTopology,
    /// The single-node machine model (nodes are homogeneous, so one
    /// template serves them all).
    node: SimMachine,
    fabric: FabricParams,
}

impl ClusterMachine {
    /// Builds the cluster machine model.
    pub fn new(cluster: ClusterTopology, params: CostParams, fabric: FabricParams) -> Self {
        let node = SimMachine::new(cluster.node_topology().clone(), params);
        ClusterMachine { cluster, node, fabric }
    }

    /// The paper's evaluation machine scaled out: `n_nodes` nodes of
    /// 2 sockets × 8 cores with the calibrated single-node and fabric cost
    /// models.
    ///
    /// # Panics
    /// Panics when `n_nodes` is zero.
    pub fn paper(n_nodes: usize) -> Self {
        ClusterMachine::new(
            paper_cluster(n_nodes).expect("paper cluster preset is valid"),
            CostParams::cluster2016(),
            FabricParams::cluster2016(),
        )
    }

    /// The hierarchical topology.
    pub fn cluster(&self) -> &ClusterTopology {
        &self.cluster
    }

    /// The flattened single-tree topology (what a `Session` over this
    /// machine is built with).
    pub fn topology(&self) -> &Topology {
        self.cluster.flatten()
    }

    /// The single-node machine model.
    pub fn node_machine(&self) -> &SimMachine {
        &self.node
    }

    /// The fabric cost model.
    pub fn fabric(&self) -> &FabricParams {
        &self.fabric
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.cluster.n_nodes()
    }

    /// Total processing units.
    pub fn n_pus(&self) -> usize {
        self.cluster.nb_pus()
    }

    /// Per-byte streaming cost between two *global* PUs: the node-local
    /// link cost within a node, the fabric per-byte cost across nodes.
    pub fn link_byte_cost(&self, ga: usize, gb: usize) -> f64 {
        match self.cluster.link_class(ga, gb) {
            FabricClass::SameNode => {
                self.node.link_byte_cost(self.cluster.local_pu(ga), self.cluster.local_pu(gb))
            }
            class => self.fabric.per_byte(class),
        }
    }

    /// One-way message latency between two global PUs (`0` within a node —
    /// intra-node grants are priced by the link costs alone).
    pub fn message_latency(&self, ga: usize, gb: usize) -> f64 {
        self.fabric.latency(self.cluster.link_class(ga, gb))
    }

    /// Relative per-byte fabric cost between two *nodes*, normalised so
    /// that the cheapest fabric class costs `1.0` (used to weight the
    /// partitioning stage's cut).  Zero for the same node.
    pub fn relative_node_cost(&self, node_a: usize, node_b: usize) -> f64 {
        if node_a == node_b {
            return 0.0;
        }
        let class =
            self.cluster.link_class(self.cluster.global_pu(node_a, 0), self.cluster.global_pu(node_b, 0));
        self.fabric.per_byte(class) / self.fabric.per_byte(FabricClass::SameRack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_topo::cluster::ClusterTopology;
    use orwl_topo::synthetic;

    #[test]
    fn paper_cluster_machine_shape() {
        let m = ClusterMachine::paper(4);
        assert_eq!(m.n_nodes(), 4);
        assert_eq!(m.n_pus(), 64);
        assert_eq!(m.topology().nb_pus(), 64);
        assert_eq!(m.node_machine().n_pus(), 16);
    }

    #[test]
    fn link_costs_escalate_with_distance() {
        let node = synthetic::cluster2016_subset(2).unwrap();
        let cluster = ClusterTopology::with_racks("racked", node, vec![0, 0, 1]).unwrap();
        let m = ClusterMachine::new(cluster, CostParams::cluster2016(), FabricParams::cluster2016());
        // Same socket < cross socket (same node) < same rack < cross rack.
        let same_socket = m.link_byte_cost(0, 1);
        let cross_socket = m.link_byte_cost(0, 8);
        let same_rack = m.link_byte_cost(0, 16);
        let cross_rack = m.link_byte_cost(0, 32);
        assert!(same_socket < cross_socket);
        assert!(cross_socket < same_rack);
        assert!(same_rack < cross_rack);
        // Latency only applies across nodes.
        assert_eq!(m.message_latency(0, 8), 0.0);
        assert!(m.message_latency(0, 16) > 0.0);
        assert!(m.message_latency(0, 16) < m.message_latency(0, 32));
    }

    #[test]
    fn relative_node_costs_reflect_racks() {
        let node = synthetic::cluster2016_subset(1).unwrap();
        let cluster = ClusterTopology::with_racks("racked", node, vec![0, 0, 1]).unwrap();
        let m = ClusterMachine::new(cluster, CostParams::cluster2016(), FabricParams::cluster2016());
        assert_eq!(m.relative_node_cost(0, 0), 0.0);
        assert_eq!(m.relative_node_cost(0, 1), 1.0);
        assert!(m.relative_node_cost(0, 2) > 1.0);
        assert_eq!(m.relative_node_cost(0, 2), m.relative_node_cost(2, 0));
    }
}
