//! Two-level topology-aware placement: shard across nodes, TreeMatch
//! within each node.
//!
//! Stage 1 treats node assignment as a clustering problem: partition the
//! task graph over the cluster's nodes minimising the fabric-weighted
//! inter-node cut ([`mod@orwl_treematch::partition`], with part distances from
//! the rack layout).  Stage 2 runs the paper's Algorithm 1 (TreeMatch)
//! *inside* each node on the matrix restricted to that node's tasks.  The
//! result is a global [`Placement`] plus the explicit node assignment the
//! backend uses for data placement and for pricing migrations.

use crate::machine::ClusterMachine;
use orwl_comm::matrix::CommMatrix;
use orwl_treematch::algorithm::TreeMatchMapper;
use orwl_treematch::mapping::Placement;
use orwl_treematch::partition::{cut_bytes, partition, treematch_within_parts, PartCosts};
use orwl_treematch::policies::{compute_placement, Policy};

/// A two-level placement: where every task runs, and on which node its
/// working set (its owned locations) lives.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlacement {
    /// Node hosting each task (and, by first-touch, each task's locations).
    pub node_of_task: Vec<usize>,
    /// The global thread → PU placement (PU indices are cluster-global).
    pub placement: Placement,
}

impl ClusterPlacement {
    /// The dense global mapping, unbound tasks defaulting to the first PU
    /// of their assigned node.
    pub fn global_mapping(&self, machine: &ClusterMachine) -> Vec<usize> {
        let per_node = machine.cluster().pus_per_node();
        self.placement
            .compute
            .iter()
            .enumerate()
            .map(|(t, pu)| pu.unwrap_or(self.node_of_task[t] * per_node))
            .collect()
    }

    /// Bytes of `m` crossing node boundaries under this placement.
    pub fn inter_node_bytes(&self, m: &CommMatrix) -> f64 {
        cut_bytes(m, &self.node_of_task)
    }
}

/// Computes the two-level placement of the `m.order()` tasks on `machine`.
///
/// Node capacities equal the PUs per node; when the task count exceeds the
/// whole cluster, the per-node capacity is relaxed evenly and TreeMatch's
/// oversubscription extension stacks tasks within nodes.
///
/// The two-level result is additionally benchmarked against a flat
/// TreeMatch run on the flattened topology: the candidate with the lower
/// fabric-weighted cut wins, ties broken by total hop-bytes.  Direct k-way
/// partitioning with refinement beats TreeMatch's bottom-up grouping on
/// the cut whenever they differ, and when they tie the flat mapping's
/// globally-optimised intra-node ordering cannot be worse — so
/// `Hierarchical` is never worse than flat TreeMatch on either metric.
pub fn hierarchical_placement(machine: &ClusterMachine, m: &CommMatrix) -> ClusterPlacement {
    let n_tasks = m.order();
    let cluster = machine.cluster();
    let n_nodes = cluster.n_nodes();
    let per_node = cluster.pus_per_node();
    if n_tasks == 0 {
        return ClusterPlacement { node_of_task: Vec::new(), placement: Placement::unbound(0, 0) };
    }

    // Stage 1: shard over nodes, cut weighted by the rack-aware fabric.
    let costs = PartCosts::from_fn(n_nodes, |a, b| machine.relative_node_cost(a, b));
    let capacity = per_node.max(n_tasks.div_ceil(n_nodes));
    let node_of_task =
        partition(m, &costs, capacity).expect("capacity is relaxed to ceil(tasks/nodes), which always fits");

    // Stage 2: TreeMatch inside each node on the restricted matrix (the
    // shared stage-2 of `Policy::Hierarchical`; node subtrees own
    // contiguous global PU ranges, so `global = node * per_node + local`).
    let compute = treematch_within_parts(cluster.node_topology(), m, &node_of_task, n_nodes, per_node);
    let two_level = ClusterPlacement { node_of_task, placement: Placement { compute, control: Vec::new() } };

    // Candidate refinement: flat TreeMatch on the flattened topology, with
    // its implied node assignment read back from the mapping.
    let flat_topo = machine.topology();
    let flat = TreeMatchMapper::compute_only().compute_placement(flat_topo, m);
    if !flat.compute.iter().all(Option::is_some) {
        return two_level;
    }
    let flat_mapping: Vec<usize> = flat.compute.iter().map(|pu| pu.unwrap()).collect();
    let flat_nodes: Vec<usize> = flat_mapping.iter().map(|&pu| cluster.node_of_pu(pu)).collect();
    // Flat TreeMatch stacks oversubscribed tasks by affinity with no
    // per-node balance guarantee; a candidate that overloads a node is not
    // a valid two-level placement.
    let mut load = vec![0usize; n_nodes];
    for &node in &flat_nodes {
        load[node] += 1;
    }
    if load.iter().any(|&l| l > capacity) {
        return two_level;
    }
    let flat_candidate = ClusterPlacement {
        node_of_task: flat_nodes,
        placement: Placement { compute: flat.compute, control: Vec::new() },
    };

    let weighted_cut =
        |cp: &ClusterPlacement| crate::metrics::cluster_cost(machine, m, &cp.global_mapping(machine));
    let hop =
        |cp: &ClusterPlacement| orwl_comm::metrics::hop_bytes(m, flat_topo, &cp.global_mapping(machine));
    let (two_cut, flat_cut) = (weighted_cut(&two_level), weighted_cut(&flat_candidate));
    if flat_cut < two_cut * (1.0 - 1e-12)
        || ((flat_cut - two_cut).abs() <= two_cut * 1e-12 && hop(&flat_candidate) < hop(&two_level))
    {
        flat_candidate
    } else {
        two_level
    }
}

/// Re-homes a dead node's tasks onto the survivors — the cluster-level
/// entry to [`orwl_adapt::reshard_after_loss`], with the attraction
/// weights derived from the *shrunk* topology
/// ([`ClusterTopology::without_node`](orwl_topo::cluster::ClusterTopology::without_node)):
/// a survivor in the same rack as a traffic partner attracts more than
/// one across the spine, under the post-loss rack layout (a loss that
/// empties a rack collapses its fabric distances).  Only the dead node's
/// shard moves; survivors keep their tasks and node indices.  `down`
/// names nodes lost in earlier episodes: they host nothing any more but
/// must never be offered as a home again.
///
/// # Panics
/// Panics when `dead` is out of range or the cluster has no survivor.
#[must_use]
pub fn reshard_after_node_loss(
    machine: &ClusterMachine,
    m: &CommMatrix,
    node_of_task: &[usize],
    dead: usize,
    down: &[usize],
) -> orwl_adapt::ReshardPlan {
    use orwl_topo::cluster::FabricClass;
    let cluster = machine.cluster();
    let shrunk = cluster.without_node(dead).expect("a reshard needs at least one survivor");
    // Survivors keep their relative order in the shrunk cluster, so the
    // original index maps by rank among survivors.
    let shrunk_of = |node: usize| if node < dead { node } else { node - 1 };
    let same_rack = machine.fabric().per_byte(FabricClass::SameRack);
    let affinity = move |a: usize, b: usize| {
        if a == b {
            return 1.0;
        }
        let class = if shrunk.rack_of_node(shrunk_of(a)) == shrunk.rack_of_node(shrunk_of(b)) {
            FabricClass::SameRack
        } else {
            FabricClass::CrossRack
        };
        1.0 / (1.0 + machine.fabric().per_byte(class) / same_rack)
    };
    orwl_adapt::reshard_after_loss(m, node_of_task, cluster.n_nodes(), dead, down, &affinity)
}

/// The two-level placement any `policy` produces on `machine` — the
/// shared node-sharding step of the cluster-simulator and multi-process
/// backends, so both lay the same tasks on the same nodes and the
/// simulator's predicted inter-node traffic is directly comparable with
/// the measured one.
///
/// [`Policy::Hierarchical`] runs the full two-level pipeline
/// ([`hierarchical_placement`]); flat policies run on the flattened
/// topology and get their node assignment read back from the mapping
/// (this is what makes Scatter-on-a-cluster the instructive baseline: it
/// round-robins blissfully across machines).  [`Policy::NoBind`] is the
/// OS-spread model: a seeded random PU permutation with no affinity.
pub fn policy_placement(
    machine: &ClusterMachine,
    policy: Policy,
    control_threads: usize,
    nobind_seed: u64,
    matrix: &CommMatrix,
) -> ClusterPlacement {
    let mapping: Vec<usize> = match policy {
        Policy::Hierarchical => return hierarchical_placement(machine, matrix),
        Policy::NoBind => {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut pus = machine.topology().pu_os_indices();
            let mut rng = rand::rngs::StdRng::seed_from_u64(nobind_seed);
            pus.shuffle(&mut rng);
            (0..matrix.order()).map(|t| pus[t % pus.len()]).collect()
        }
        policy => {
            let flat = machine.topology();
            let placement = compute_placement(policy, flat, matrix, control_threads);
            let pus = flat.pu_os_indices();
            placement.compute_mapping_with(|t| pus[t % pus.len()])
        }
    };
    let node_of_task = mapping.iter().map(|&pu| machine.cluster().node_of_pu(pu)).collect();
    ClusterPlacement {
        node_of_task,
        placement: Placement { compute: mapping.into_iter().map(Some).collect(), control: Vec::new() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;

    #[test]
    fn clustered_pattern_maps_one_group_per_node() {
        let machine = ClusterMachine::paper(4); // 4 nodes × 16 PUs
        let m = patterns::clustered(4, 16, 1000.0, 1.0);
        let p = hierarchical_placement(&machine, &m);
        assert_eq!(p.node_of_task.len(), 64);
        // Each heavy group of 16 occupies exactly one node.
        for g in 0..4 {
            let nodes: std::collections::HashSet<usize> =
                (0..16).map(|i| p.node_of_task[g * 16 + i]).collect();
            assert_eq!(nodes.len(), 1, "group {g} split across nodes {nodes:?}");
        }
        // Only the light inter-group ring crosses the fabric.
        assert!(p.inter_node_bytes(&m) < 0.01 * m.total_volume());
        // Every task is bound inside its assigned node.
        for (t, pu) in p.placement.compute.iter().enumerate() {
            let pu = pu.expect("two-level placement binds every task");
            assert_eq!(machine.cluster().node_of_pu(pu), p.node_of_task[t]);
        }
        p.placement.validate_against(machine.topology()).unwrap();
    }

    #[test]
    fn oversubscribed_cluster_still_places_every_task() {
        let machine = ClusterMachine::paper(2); // 32 PUs
        let m = patterns::chain(80, 10.0); // 2.5 tasks per PU
        let p = hierarchical_placement(&machine, &m);
        assert!(p.placement.compute.iter().all(Option::is_some));
        for (t, pu) in p.placement.compute.iter().enumerate() {
            assert_eq!(machine.cluster().node_of_pu(pu.unwrap()), p.node_of_task[t]);
        }
    }

    #[test]
    fn empty_matrix_is_an_empty_placement() {
        let machine = ClusterMachine::paper(2);
        let p = hierarchical_placement(&machine, &CommMatrix::zeros(0));
        assert!(p.node_of_task.is_empty());
        assert_eq!(p.placement.n_compute(), 0);
    }

    #[test]
    fn policy_placement_matches_its_ingredients() {
        let machine = ClusterMachine::paper(2);
        let m = patterns::clustered(2, 16, 1000.0, 1.0);
        // Hierarchical delegates to the two-level pipeline.
        assert_eq!(
            policy_placement(&machine, Policy::Hierarchical, 0, 0, &m),
            hierarchical_placement(&machine, &m)
        );
        // Flat policies read their node assignment back from the mapping.
        let scatter = policy_placement(&machine, Policy::Scatter, 0, 0, &m);
        assert!(scatter.placement.compute.iter().all(Option::is_some));
        for (t, pu) in scatter.placement.compute.iter().enumerate() {
            assert_eq!(machine.cluster().node_of_pu(pu.unwrap()), scatter.node_of_task[t]);
        }
        // NoBind is reproducible per seed and differs across seeds.
        let a = policy_placement(&machine, Policy::NoBind, 0, 42, &m);
        let b = policy_placement(&machine, Policy::NoBind, 0, 42, &m);
        let c = policy_placement(&machine, Policy::NoBind, 0, 7, &m);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn node_loss_reshard_moves_only_the_dead_shard() {
        let machine = ClusterMachine::paper(4);
        let m = patterns::clustered(4, 9, 1000.0, 1.0);
        let p = hierarchical_placement(&machine, &m);
        let dead = p.node_of_task[0];
        let plan = reshard_after_node_loss(&machine, &m, &p.node_of_task, dead, &[]);
        assert_eq!(plan.dead, dead);
        assert!(!plan.migrated_tasks.is_empty());
        assert!(!plan.node_of_task.contains(&dead), "the dead node must host nothing");
        for (t, &node) in p.node_of_task.iter().enumerate() {
            if node != dead {
                assert_eq!(plan.node_of_task[t], node, "survivor task {t} must not move");
            }
        }
        // Deterministic: the same loss re-shards the same way.
        assert_eq!(plan, reshard_after_node_loss(&machine, &m, &p.node_of_task, dead, &[]));
    }

    #[test]
    fn global_mapping_defaults_unbound_tasks_to_their_node() {
        let machine = ClusterMachine::paper(2);
        let p = ClusterPlacement {
            node_of_task: vec![0, 1],
            placement: Placement { compute: vec![Some(3), None], control: vec![] },
        };
        assert_eq!(p.global_mapping(&machine), vec![3, 16]);
    }
}
