//! Cluster-level locality metrics: the hop-bytes metric split at the
//! machine boundary.

use crate::machine::ClusterMachine;
use orwl_comm::matrix::CommMatrix;
use orwl_topo::cluster::ClusterTopology;

/// Hop-bytes of a global mapping split into the intra-node and inter-node
/// components: `(intra, inter)`.  Their sum equals
/// [`orwl_comm::metrics::hop_bytes`] on the flattened topology.
pub fn split_hop_bytes(cluster: &ClusterTopology, m: &CommMatrix, mapping: &[usize]) -> (f64, f64) {
    assert!(mapping.len() >= m.order(), "mapping must cover every task of the matrix");
    let (mut intra, mut inter) = (0.0, 0.0);
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v == 0.0 {
                continue;
            }
            let (a, b) = (mapping[i], mapping[j]);
            let hops = v * cluster.hop_distance(a, b) as f64;
            if cluster.node_of_pu(a) == cluster.node_of_pu(b) {
                intra += hops;
            } else {
                inter += hops;
            }
        }
    }
    (intra, inter)
}

/// Bytes of `m` whose endpoints are mapped to different nodes (the
/// unweighted fabric cut of a mapping).
pub fn inter_node_bytes(cluster: &ClusterTopology, m: &CommMatrix, mapping: &[usize]) -> f64 {
    assert!(mapping.len() >= m.order(), "mapping must cover every task of the matrix");
    let mut bytes = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            if m.get(i, j) != 0.0 && cluster.node_of_pu(mapping[i]) != cluster.node_of_pu(mapping[j]) {
                bytes += m.get(i, j);
            }
        }
    }
    bytes
}

/// Fabric-aware communication cost of a mapping, in seconds per iteration:
/// every byte is priced at the machine's per-byte link cost between its
/// endpoints (node-local links within a node, fabric links across).  This
/// is the objective the adaptive cluster engine compares placements by —
/// unlike hop-bytes it knows that a fabric hop costs orders of magnitude
/// more than a tree hop.
pub fn cluster_cost(machine: &ClusterMachine, m: &CommMatrix, mapping: &[usize]) -> f64 {
    assert!(mapping.len() >= m.order(), "mapping must cover every task of the matrix");
    let mut cost = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v != 0.0 {
                cost += v * machine.link_byte_cost(mapping[i], mapping[j]);
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::metrics::hop_bytes;
    use orwl_comm::patterns;

    #[test]
    fn split_components_sum_to_flat_hop_bytes() {
        let machine = ClusterMachine::paper(3);
        let m = patterns::all_to_all(12, 7.0);
        // Spread tasks over the first PUs of each node.
        let mapping: Vec<usize> = (0..12).map(|t| (t % 3) * 16 + t / 3).collect();
        let (intra, inter) = split_hop_bytes(machine.cluster(), &m, &mapping);
        let flat = hop_bytes(&m, machine.topology(), &mapping);
        assert!((intra + inter - flat).abs() < 1e-9);
        assert!(inter > 0.0 && intra > 0.0);
    }

    #[test]
    fn colocated_mapping_has_zero_inter_node_traffic() {
        let machine = ClusterMachine::paper(2);
        let m = patterns::all_to_all(8, 3.0);
        let mapping: Vec<usize> = (0..8).collect(); // all on node 0
        let (_, inter) = split_hop_bytes(machine.cluster(), &m, &mapping);
        assert_eq!(inter, 0.0);
        assert_eq!(inter_node_bytes(machine.cluster(), &m, &mapping), 0.0);
    }

    #[test]
    fn cluster_cost_penalises_fabric_crossings() {
        let machine = ClusterMachine::paper(2);
        let m = patterns::chain(2, 1000.0);
        let local = cluster_cost(&machine, &m, &[0, 1]);
        let cross = cluster_cost(&machine, &m, &[0, 16]);
        assert!(cross > 10.0 * local, "fabric {cross} vs local {local}");
        // inter_node_bytes counts both directions of the chain link.
        assert_eq!(inter_node_bytes(machine.cluster(), &m, &[0, 16]), m.total_volume());
    }
}
