//! Property tests of the two-level placement invariants.

use orwl_cluster::{hierarchical_placement, ClusterMachine};
use orwl_comm::matrix::CommMatrix;
use orwl_treematch::partition::cut_bytes;
use proptest::prelude::*;

/// A random symmetric matrix of `n` tasks from a seed.
fn random_matrix(n: usize, seed: u64) -> CommMatrix {
    orwl_comm::patterns::random_symmetric(n, 0.4, 1000.0, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The invariant the cluster executor's data model relies on: two-level
    // placement never splits a task's location off-node from its owner —
    // every task is bound to a PU of exactly the node its partition
    // assigned, so first-touch data is always node-local to the owner.
    #[test]
    fn placement_never_splits_a_task_from_its_node(
        n_nodes in 2usize..5,
        n_tasks in 1usize..40,
        seed in 0u64..1000,
    ) {
        let machine = ClusterMachine::paper(n_nodes);
        let m = random_matrix(n_tasks, seed);
        let p = hierarchical_placement(&machine, &m);
        prop_assert_eq!(p.node_of_task.len(), n_tasks);
        for (t, pu) in p.placement.compute.iter().enumerate() {
            let pu = pu.expect("two-level placement binds every task");
            prop_assert!(pu < machine.n_pus());
            prop_assert_eq!(
                machine.cluster().node_of_pu(pu), p.node_of_task[t],
                "task {} bound off its assigned node", t
            );
        }
        // The node assignment respects the relaxed per-node capacity.
        let capacity = machine.cluster().pus_per_node().max(n_tasks.div_ceil(n_nodes));
        let mut load = vec![0usize; n_nodes];
        for &node in &p.node_of_task {
            prop_assert!(node < n_nodes);
            load[node] += 1;
        }
        prop_assert!(load.iter().all(|&l| l <= capacity), "overloaded node: {:?}", load);
    }

    // The mapping must reproduce the partition's fabric cut exactly: the
    // cut bytes read back from the global PU mapping equal the ones the
    // partitioning stage optimised.
    #[test]
    fn mapped_cut_equals_partition_cut(
        n_nodes in 2usize..4,
        n_tasks in 2usize..30,
        seed in 0u64..1000,
    ) {
        let machine = ClusterMachine::paper(n_nodes);
        let m = random_matrix(n_tasks, seed);
        let p = hierarchical_placement(&machine, &m);
        let mapping = p.global_mapping(&machine);
        let from_mapping =
            orwl_cluster::inter_node_bytes(machine.cluster(), &m, &mapping);
        let from_partition = cut_bytes(&m, &p.node_of_task);
        prop_assert!((from_mapping - from_partition).abs() < 1e-6);
    }
}
