//! Property-based tests of the adaptive subsystem's two load-bearing
//! guarantees:
//!
//! * the [`OnlineCommMatrix`] decay update preserves symmetry and
//!   non-negativity for arbitrary record/roll schedules;
//! * the [`DriftDetector`] never fires while the pattern is stationary
//!   (whatever its absolute rate does) and always fires after a
//!   rotated-stencil phase change.

use orwl_adapt::drift::{DriftConfig, DriftDetector};
use orwl_adapt::online::OnlineCommMatrix;
use orwl_comm::patterns::{stencil_2d_directional, stencil_2d_rotated, StencilSpec};
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};
use proptest::prelude::*;

/// Strategy producing a batch of symmetric transfer records over `order`
/// tasks: `(src, dst, volume)` plus its mirror.
fn symmetric_records(order: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0usize..order, 0usize..order, 0.0f64..1000.0), 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decay_preserves_symmetry_and_nonnegativity(
        decay in 0.0f64..0.95,
        epochs in proptest::collection::vec(symmetric_records(12), 1..8),
    ) {
        let mut online = OnlineCommMatrix::new(12, decay);
        for batch in &epochs {
            for &(a, b, v) in batch {
                online.record(a, b, v);
                online.record(b, a, v);
            }
            online.roll_epoch();
            let m = online.smoothed();
            prop_assert!(m.is_symmetric(), "smoothed estimate must stay symmetric");
            prop_assert!(m.as_slice().iter().all(|&x| x >= 0.0), "entries must stay non-negative");
            prop_assert!(m.as_slice().iter().all(|&x| x.is_finite()));
        }
        prop_assert_eq!(online.epochs(), epochs.len() as u64);
    }

    #[test]
    fn detector_never_fires_on_a_stationary_pattern(
        side in 3usize..7,
        scale_seq in proptest::collection::vec(0.1f64..10.0, 1..12),
        threshold in 0.01f64..0.5,
    ) {
        let n_tasks = side * side;
        let sockets = n_tasks.div_ceil(8).max(2);
        let topo = synthetic::cluster2016_subset(sockets).unwrap();
        let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: 128.0 };
        let baseline = stencil_2d_directional(&spec, 65536.0, 1024.0);
        let mapping = compute_placement(Policy::TreeMatch, &topo, &baseline, 0).compute_mapping_or_zero();
        let mut det = DriftDetector::new(DriftConfig { threshold, patience: 1, cooldown: 0 });
        for &scale in &scale_seq {
            // Same structure at a varying rate: never a (structural) drift.
            let obs = det.observe(&topo, &mapping, &baseline, &baseline.scaled(scale));
            prop_assert!(!obs.fired, "fired on stationary traffic (scale {scale}): {obs:?}");
        }
    }

    #[test]
    fn detector_always_fires_after_a_rotated_stencil_phase_change(
        // side ≥ 4: the grid must span several sockets for the rotation to
        // move traffic across placement groups at all — a 3×3 grid fits one
        // socket, where every mapping costs the same and there is nothing
        // to detect (and nothing to gain from re-placement either).
        side in 4usize..8,
        warmup_epochs in 1usize..5,
    ) {
        let n_tasks = side * side;
        let sockets = n_tasks.div_ceil(8).max(2);
        let topo = synthetic::cluster2016_subset(sockets).unwrap();
        let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: 128.0 };
        let before = stencil_2d_directional(&spec, 65536.0, 1024.0);
        let after = stencil_2d_rotated(&spec, 65536.0, 1024.0);
        let mapping = compute_placement(Policy::TreeMatch, &topo, &before, 0).compute_mapping_or_zero();
        let mut det = DriftDetector::new(DriftConfig { threshold: 0.10, patience: 1, cooldown: 0 });
        // Stationary warmup epochs must stay quiet...
        for _ in 0..warmup_epochs {
            prop_assert!(!det.observe(&topo, &mapping, &before, &before).fired);
        }
        // ...and the rotated phase must be caught immediately.
        let obs = det.observe(&topo, &mapping, &before, &after);
        prop_assert!(obs.fired, "rotation not detected: {obs:?}");
        prop_assert!(obs.delta > 0.10);
    }
}
