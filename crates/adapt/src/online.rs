//! The epoch-windowed online communication accumulator.
//!
//! Transfers observed during the open epoch accumulate in a *current*
//! matrix; [`OnlineCommMatrix::roll_epoch`] folds it into the *smoothed*
//! estimate with an exponential-decay update
//!
//! ```text
//! smoothed ← decay · smoothed + (1 − decay) · current
//! ```
//!
//! so the estimate tracks the live pattern while old phases fade out
//! geometrically.  Both invariants the rest of the subsystem relies on are
//! preserved by construction and checked by property tests: entries stay
//! non-negative, and symmetric inputs produce symmetric estimates.

use orwl_comm::matrix::CommMatrix;

/// Epoch-windowed, exponentially-decayed estimate of the live
/// task-to-task communication matrix.
#[derive(Debug, Clone)]
pub struct OnlineCommMatrix {
    decay: f64,
    current: CommMatrix,
    smoothed: CommMatrix,
    closed_epochs: u64,
    records_in_epoch: u64,
}

impl OnlineCommMatrix {
    /// Creates an accumulator for `order` tasks.
    ///
    /// `decay ∈ [0, 1)` is the weight the previous estimate keeps at each
    /// epoch roll; `0` tracks only the last epoch, values near `1` average
    /// over many epochs (slower to adapt, smoother).
    ///
    /// # Panics
    /// Panics unless `0 ≤ decay < 1`.
    pub fn new(order: usize, decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1), got {decay}");
        OnlineCommMatrix {
            decay,
            current: CommMatrix::zeros(order),
            smoothed: CommMatrix::zeros(order),
            closed_epochs: 0,
            records_in_epoch: 0,
        }
    }

    /// Number of tasks covered.
    pub fn order(&self) -> usize {
        self.current.order()
    }

    /// The decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Records `bytes` flowing `src → dst` during the open epoch.
    ///
    /// Self-transfers are ignored (they never leave a PU) and zero volumes
    /// are dropped early.
    ///
    /// # Panics
    /// Panics when an index is out of range or `bytes` is negative/NaN.
    pub fn record(&mut self, src: usize, dst: usize, bytes: f64) {
        assert!(src < self.order() && dst < self.order(), "task index out of range");
        assert!(bytes >= 0.0, "transfer volume must be non-negative, got {bytes}");
        if src == dst || bytes == 0.0 {
            return;
        }
        self.current.add(src, dst, bytes);
        self.records_in_epoch += 1;
    }

    /// Closes the open epoch: folds the current window into the smoothed
    /// estimate and clears the window.  Returns the number of transfer
    /// records the closed epoch contained.
    pub fn roll_epoch(&mut self) -> u64 {
        let records = self.records_in_epoch;
        self.smoothed = self.smoothed.scaled(self.decay);
        self.smoothed.add_scaled(&self.current, 1.0 - self.decay);
        self.current.reset();
        self.records_in_epoch = 0;
        self.closed_epochs += 1;
        records
    }

    /// The smoothed (decayed) estimate over all closed epochs.
    pub fn smoothed(&self) -> &CommMatrix {
        &self.smoothed
    }

    /// The traffic recorded in the open (not yet rolled) epoch.
    pub fn open_window(&self) -> &CommMatrix {
        &self.current
    }

    /// Symmetrised copy of the smoothed estimate — the form the placement
    /// algorithms consume.
    pub fn smoothed_symmetric(&self) -> CommMatrix {
        self.smoothed.symmetrized()
    }

    /// Number of closed epochs.
    pub fn epochs(&self) -> u64 {
        self.closed_epochs
    }

    /// True once at least one closed epoch contributed actual traffic —
    /// before that the estimate is all zeros and no drift decision should
    /// be made from it.
    pub fn is_warmed_up(&self) -> bool {
        self.closed_epochs > 0 && self.smoothed.total_volume() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_roll_into_the_estimate() {
        let mut m = OnlineCommMatrix::new(4, 0.5);
        assert!(!m.is_warmed_up());
        m.record(0, 1, 100.0);
        m.record(1, 0, 100.0);
        m.record(0, 0, 999.0); // self transfer: ignored
        assert_eq!(m.open_window().get(0, 1), 100.0);
        assert_eq!(m.open_window().get(0, 0), 0.0);
        assert_eq!(m.smoothed().total_volume(), 0.0);

        assert_eq!(m.roll_epoch(), 2);
        assert!(m.is_warmed_up());
        // (1 - decay) · 100.
        assert_eq!(m.smoothed().get(0, 1), 50.0);
        assert_eq!(m.open_window().total_volume(), 0.0);

        // A silent epoch decays the estimate geometrically.
        assert_eq!(m.roll_epoch(), 0);
        assert_eq!(m.smoothed().get(0, 1), 25.0);
        assert_eq!(m.epochs(), 2);
    }

    #[test]
    fn decay_zero_tracks_only_the_last_epoch() {
        let mut m = OnlineCommMatrix::new(2, 0.0);
        m.record(0, 1, 10.0);
        m.roll_epoch();
        assert_eq!(m.smoothed().get(0, 1), 10.0);
        m.record(1, 0, 4.0);
        m.roll_epoch();
        assert_eq!(m.smoothed().get(0, 1), 0.0);
        assert_eq!(m.smoothed().get(1, 0), 4.0);
    }

    #[test]
    fn steady_pattern_converges_to_its_per_epoch_volume() {
        let mut m = OnlineCommMatrix::new(2, 0.8);
        for _ in 0..200 {
            m.record(0, 1, 7.0);
            m.roll_epoch();
        }
        // Fixed point of s = 0.8 s + 0.2 · 7 is 7.
        assert!((m.smoothed().get(0, 1) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_recording_yields_symmetric_estimate() {
        let mut m = OnlineCommMatrix::new(3, 0.6);
        for (a, b, v) in [(0, 1, 5.0), (1, 2, 3.0)] {
            m.record(a, b, v);
            m.record(b, a, v);
        }
        m.roll_epoch();
        assert!(m.smoothed().is_symmetric());
        assert!(m.smoothed_symmetric().is_symmetric());
    }

    #[test]
    #[should_panic]
    fn negative_volumes_are_rejected() {
        OnlineCommMatrix::new(2, 0.5).record(0, 1, -1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_task_is_rejected() {
        OnlineCommMatrix::new(2, 0.5).record(0, 5, 1.0);
    }

    #[test]
    #[should_panic]
    fn decay_of_one_is_rejected() {
        OnlineCommMatrix::new(2, 1.0);
    }
}
