//! The NUMA simulator as an [`ExecutionBackend`]: the `Session` front door
//! for phased workloads, with the static / adaptive / oracle run modes that
//! used to be the bespoke `run_static` / `run_adaptive` / `run_oracle` trio
//! of the deleted pre-`Session` harness.
//!
//! The backend plays the role of the paper's 192-core testbed.  Under
//! [`Mode::Static`](orwl_core::session::Mode) it places once from the first
//! phase's matrix and never re-maps; under `Mode::Adaptive` it closes the
//! monitor → epoch roll → drift detection → budgeted re-placement loop
//! online, paying for every migration both in time and in hop-bytes; under
//! `Mode::Oracle` it re-maps for free at every phase boundary — the
//! unbeatable reference the adaptive policy is measured against.
//!
//! The adaptive driver is honest about its information: the detector sees
//! only what the executor's [`SimMonitor`] hooks observed, epoch by epoch —
//! it has no knowledge of where phase boundaries are.  The backend is
//! pinned against golden values (captured from the bit-for-bit-equivalent
//! original harness) by the `session_equivalence` integration test.

use crate::drift::DriftDetector;
use crate::engine::AdaptConfig;
use crate::online::OnlineCommMatrix;
use crate::replace::{Decision, Replacer};
use orwl_comm::metrics::hop_bytes;
use orwl_core::error::{ConfigError, OrwlError};
use orwl_core::placement::PlacementPlan;
use orwl_core::runtime::AdaptReport;
use orwl_core::session::{ExecutionBackend, Mode, Report, RunTime, SessionConfig, Workload};
use orwl_numasim::exec::{simulate_monitored, SimMonitor};
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::workload::PhasedWorkload;
use orwl_obs::{ClockKind, EventKind, Recorder};
use orwl_treematch::mapping::Placement;
use orwl_treematch::policies::{compute_placement, Policy};

/// The discrete-event NUMA simulator as a `Session` backend.
#[derive(Debug, Clone)]
pub struct SimBackend {
    machine: SimMachine,
    adapt: AdaptConfig,
    nobind_seed: u64,
}

impl SimBackend {
    /// Wraps a simulated machine with the default adaptive tuning.
    #[must_use]
    pub fn new(machine: SimMachine) -> Self {
        SimBackend { machine, adapt: AdaptConfig::default(), nobind_seed: 0xC0FFEE }
    }

    /// Replaces the engine tuning used in adaptive mode (decay, drift
    /// detector, replacer).
    #[must_use]
    pub fn with_adapt_config(mut self, adapt: AdaptConfig) -> Self {
        self.adapt = adapt;
        self
    }

    /// Replaces the seed of the OS-placement model used for
    /// [`Policy::NoBind`] runs.
    #[must_use]
    pub fn with_nobind_seed(mut self, seed: u64) -> Self {
        self.nobind_seed = seed;
        self
    }

    /// The simulated machine.
    #[must_use]
    pub fn machine(&self) -> &SimMachine {
        &self.machine
    }

    fn placement_for(&self, config: &SessionConfig, workload: &PhasedWorkload, phase: usize) -> Placement {
        let matrix = workload.phases[phase].graph.comm_matrix().symmetrized();
        compute_placement(config.policy, &config.topology, &matrix, config.control_threads)
    }

    fn mapping_of(&self, placement: &Placement) -> Vec<usize> {
        let pus = self.machine.topology().pu_os_indices();
        placement.compute_mapping_with(|t| pus[t % pus.len()])
    }

    fn scenario_for(&self, config: &SessionConfig, mapping: Vec<usize>, n_tasks: usize) -> ExecutionScenario {
        if config.policy == Policy::NoBind {
            ExecutionScenario::orwl_nobind(&self.machine, n_tasks, self.nobind_seed)
        } else {
            ExecutionScenario::bound(&self.machine, mapping)
        }
        .with_label(config.policy.name())
    }

    /// Static and oracle modes share one loop: a fixed placement schedule,
    /// re-computed per phase only for the oracle.
    fn run_fixed_schedule(
        &self,
        config: &SessionConfig,
        workload: &PhasedWorkload,
        oracle: bool,
        obs: Option<&Recorder>,
    ) -> (PlacementPlan, f64, f64) {
        let initial = self.placement_for(config, workload, 0);
        let mut total_time = 0.0;
        let mut cumulative_hop_bytes = 0.0;
        for (k, phase) in workload.phases.iter().enumerate() {
            let placement =
                if oracle && k > 0 { self.placement_for(config, workload, k) } else { initial.clone() };
            let mapping = self.mapping_of(&placement);
            let scenario = self.scenario_for(config, mapping, phase.graph.n_tasks());
            let report =
                orwl_numasim::exec::simulate(&self.machine, &phase.graph, &scenario, phase.iterations);
            total_time += report.total_time;
            let phase_bytes = phase.iterations as f64
                * hop_bytes(&phase.graph.comm_matrix(), self.machine.topology(), &scenario.task_pu);
            cumulative_hop_bytes += phase_bytes;
            if let Some(obs) = obs {
                // One epoch per phase: the fixed schedules have no finer
                // decision boundary.
                obs.set_sim_now(total_time);
                obs.record(EventKind::Epoch { epoch: k as u64 + 1, bytes: phase_bytes });
            }
        }
        let plan =
            PlacementPlan::new(config.policy, workload.phases[0].graph.comm_matrix().symmetrized(), initial);
        (plan, total_time, cumulative_hop_bytes)
    }

    /// The full online loop: monitor (through the executor's hooks) → epoch
    /// roll → drift detection → budgeted re-placement, paying for every
    /// migration both in time (moving task state across the interconnect)
    /// and in hop-bytes.
    fn run_adaptive(
        &self,
        config: &SessionConfig,
        workload: &PhasedWorkload,
        epoch_iterations: usize,
        obs: Option<&Recorder>,
    ) -> (PlacementPlan, f64, f64, AdaptReport) {
        let n = workload.n_tasks();
        let topo = self.machine.topology();
        let initial = self.placement_for(config, workload, 0);
        let mut placement = initial.clone();
        let mut baseline = workload.phases[0].graph.comm_matrix().symmetrized();
        let mut online = OnlineCommMatrix::new(n, self.adapt.decay);
        let mut detector = DriftDetector::new(self.adapt.drift);
        let replacer = Replacer::new(self.adapt.replacer);

        let mut total_time = 0.0;
        let mut cumulative_hop_bytes = 0.0;
        let mut epochs = 0u64;
        let mut migrations = 0u64;
        let mut drift_deltas = Vec::new();

        for phase in &workload.phases {
            let phase_matrix = phase.graph.comm_matrix();
            let mut done = 0usize;
            while done < phase.iterations {
                let chunk = epoch_iterations.min(phase.iterations - done);
                let mapping = self.mapping_of(&placement);
                let scenario = self.scenario_for(config, mapping.clone(), n);
                let mut monitor = RecordingMonitor { online: &mut online, bytes: 0.0 };
                let report = simulate_monitored(&self.machine, &phase.graph, &scenario, chunk, &mut monitor);
                let chunk_bytes = monitor.bytes;
                total_time += report.total_time;
                cumulative_hop_bytes += chunk as f64 * hop_bytes(&phase_matrix, topo, &scenario.task_pu);
                done += chunk;

                // Epoch boundary: roll the window and decide.
                epochs += 1;
                online.roll_epoch();
                if let Some(obs) = obs {
                    obs.set_sim_now(total_time);
                    obs.record(EventKind::Epoch { epoch: epochs, bytes: chunk_bytes });
                }
                if !online.is_warmed_up() {
                    continue;
                }
                let live = online.smoothed_symmetric();
                let observation = detector.observe(topo, &scenario.task_pu, &baseline, &live);
                drift_deltas.push(observation.delta);
                if let Some(obs) = obs {
                    obs.record(EventKind::DriftDecision {
                        outcome: observation.outcome(),
                        delta: observation.delta,
                    });
                }
                if !observation.fired {
                    continue;
                }
                if let Decision::Migrate { placement: next, migration_cost, .. } =
                    replacer.evaluate(topo, &live, &placement, config.control_threads)
                {
                    // Pay for the migration: the moved bytes are charged
                    // both as hop-bytes (the metric) and as interconnect
                    // time (the simulated stall while working sets move).
                    cumulative_hop_bytes += migration_cost;
                    total_time += migration_cost / self.machine.params().interconnect_bandwidth;
                    if let Some(obs) = obs {
                        let next_mapping = self.mapping_of(&next);
                        let tasks_moved = mapping.iter().zip(&next_mapping).filter(|(a, b)| a != b).count();
                        obs.set_sim_now(total_time);
                        obs.record(EventKind::Migration {
                            tasks_moved,
                            bytes: migration_cost,
                            cross_node: false,
                        });
                    }
                    placement = next;
                    baseline = live.clone();
                    detector.arm_cooldown();
                    migrations += 1;
                }
            }
        }
        let plan =
            PlacementPlan::new(config.policy, workload.phases[0].graph.comm_matrix().symmetrized(), initial);
        let adapt = AdaptReport {
            epochs,
            replacements: migrations,
            rebinds_applied: 0,
            node_reshards: 0,
            drift_deltas,
        };
        (plan, total_time, cumulative_hop_bytes, adapt)
    }
}

struct RecordingMonitor<'a> {
    online: &'a mut OnlineCommMatrix,
    /// Bytes the executor reported this chunk — becomes the epoch event's
    /// traffic volume in the telemetry timeline.
    bytes: f64,
}

impl SimMonitor for RecordingMonitor<'_> {
    fn on_transfer(&mut self, _iteration: usize, src: usize, dst: usize, bytes: f64) {
        self.online.record(src, dst, bytes);
        self.bytes += bytes;
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "numasim"
    }

    fn run(&self, config: &SessionConfig, workload: Workload) -> Result<Report, OrwlError> {
        let Workload::Phased(workload) = workload else {
            return Err(ConfigError::WorkloadMismatch {
                backend: self.name().to_string(),
                expected: "phased".to_string(),
            }
            .into());
        };
        // Placements are computed against the session topology while the
        // cost model runs on the machine's — they must be one and the same,
        // or every metric would silently mix two machines.
        let modelled = self.machine.topology();
        if config.topology.name() != modelled.name()
            || config.topology.nb_pus() != modelled.nb_pus()
            || config.topology.level_spec() != modelled.level_spec()
        {
            return Err(ConfigError::TopologyMismatch {
                backend: self.name().to_string(),
                expected: modelled.name().to_string(),
                got: config.topology.name().to_string(),
            }
            .into());
        }
        // Simulated clock: event timestamps advance with the cost model's
        // notion of time, not the host's.  The recorder is also installed
        // globally so the placement-solve phase spans emitted from inside
        // TreeMatch land in the same timeline.
        let recorder = config.observe.map(|cfg| Recorder::new(ClockKind::Simulated, cfg));
        let registration = recorder.as_ref().map(orwl_obs::install);
        let (plan, total_time, cumulative_hop_bytes, adapt) = match &config.mode {
            Mode::Static => {
                let (plan, t, h) = self.run_fixed_schedule(config, &workload, false, recorder.as_deref());
                (plan, t, h, None)
            }
            Mode::Oracle => {
                let (plan, t, h) = self.run_fixed_schedule(config, &workload, true, recorder.as_deref());
                (plan, t, h, None)
            }
            Mode::Adaptive(spec) => {
                // A controller-bearing spec was tuned for the thread
                // runtime; running it here would silently substitute this
                // backend's own engine tuning.
                if spec.controller.is_some() {
                    return Err(
                        ConfigError::UnsupportedController { backend: self.name().to_string() }.into()
                    );
                }
                let (plan, t, h, adapt) =
                    self.run_adaptive(config, &workload, spec.epoch_iterations, recorder.as_deref());
                (plan, t, h, Some(adapt))
            }
        };
        drop(registration);
        let breakdown = plan.breakdown(&config.topology);
        Ok(Report {
            backend: self.name().to_string(),
            mode: config.mode.name(),
            time: RunTime::Simulated(total_time),
            plan,
            breakdown,
            hop_bytes: cumulative_hop_bytes,
            adapt,
            thread: None,
            fabric: None,
            obs: recorder.map(|r| r.finish(self.name())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_core::runtime::AdaptiveSpec;
    use orwl_core::session::Session;
    use orwl_numasim::costmodel::CostParams;
    use orwl_topo::synthetic;

    fn machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
    }

    fn workload() -> PhasedWorkload {
        PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200])
    }

    fn session(mode: Mode) -> Session {
        Session::builder()
            .topology(machine().topology().clone())
            .policy(Policy::TreeMatch)
            .control_threads(0)
            .mode(mode)
            .backend(SimBackend::new(machine()).with_adapt_config(AdaptConfig::evaluation()))
            .build()
            .unwrap()
    }

    #[test]
    fn single_phase_workload_never_migrates() {
        let w = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[40]);
        let adaptive = session(Mode::Adaptive(AdaptiveSpec::per_iterations(4))).run(w.clone()).unwrap();
        let adapt = adaptive.adapt.expect("adaptive runs report counters");
        assert_eq!(adapt.replacements, 0);
        assert!(adapt.epochs >= 1);
        // With no drift the adaptive run's hop-bytes equal the static run's.
        let fixed = session(Mode::Static).run(w).unwrap();
        assert!((adaptive.hop_bytes - fixed.hop_bytes).abs() < 1e-6);
    }

    #[test]
    fn adaptive_beats_static_and_approaches_oracle() {
        let w = workload();
        let fixed = session(Mode::Static).run(w.clone()).unwrap();
        let oracle = session(Mode::Oracle).run(w.clone()).unwrap();
        let adaptive = session(Mode::Adaptive(AdaptiveSpec::per_iterations(4))).run(w).unwrap();

        let adapt = adaptive.adapt.as_ref().expect("adaptive runs report counters");
        assert!(adapt.replacements >= 1, "phase change must trigger a migration: {adapt:?}");
        assert!(
            adaptive.hop_bytes < fixed.hop_bytes,
            "adaptive {} must beat static {}",
            adaptive.hop_bytes,
            fixed.hop_bytes
        );
        assert!(oracle.hop_bytes <= adaptive.hop_bytes + 1e-9, "the free-remap oracle is a lower bound");
        let ratio = adaptive.hop_bytes / oracle.hop_bytes;
        assert!(ratio <= 1.10, "adaptive must be within 10% of the oracle, got {ratio:.3}");
    }

    #[test]
    fn oracle_wall_clock_is_no_worse_than_static() {
        let w = workload();
        let fixed = session(Mode::Static).run(w.clone()).unwrap();
        let oracle = session(Mode::Oracle).run(w).unwrap();
        assert!(oracle.time.seconds() <= fixed.time.seconds() * 1.0001);
        assert!(oracle.time.as_wall().is_none(), "simulated runs report simulated time");
    }

    #[test]
    fn program_workloads_are_mismatched_on_the_simulator() {
        let err = session(Mode::Static).run(orwl_core::task::OrwlProgram::new()).unwrap_err();
        // Empty programs are caught by the session before the backend...
        assert_eq!(err, OrwlError::Config(ConfigError::EmptyProgram));
        // ...non-empty ones by the backend's workload check.
        let mut program = orwl_core::task::OrwlProgram::new();
        program.add_task(orwl_core::task::TaskSpec::new("t", vec![]), |_| {});
        match session(Mode::Static).run(program).unwrap_err() {
            OrwlError::Config(ConfigError::WorkloadMismatch { backend, expected }) => {
                assert_eq!(backend, "numasim");
                assert_eq!(expected, "phased");
            }
            other => panic!("expected WorkloadMismatch, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_session_topology_is_rejected() {
        let session = Session::builder()
            .topology(synthetic::laptop()) // not the machine the backend models
            .control_threads(0)
            .backend(SimBackend::new(machine()))
            .build()
            .unwrap();
        let w = PhasedWorkload::rotating_stencil(2, 64.0, 8.0, 16.0, 64.0, &[2]);
        match session.run(w).unwrap_err() {
            OrwlError::Config(ConfigError::TopologyMismatch { backend, expected, got }) => {
                assert_eq!(backend, "numasim");
                assert_eq!(expected, machine().topology().name());
                assert_eq!(got, "laptop");
            }
            other => panic!("expected TopologyMismatch, got {other:?}"),
        }
    }

    #[test]
    fn controller_bearing_adaptive_spec_is_rejected() {
        let engine = crate::engine::AdaptiveEngine::new(AdaptConfig::default());
        let spec = crate::engine::adaptive_session_spec(engine, std::time::Duration::from_millis(15));
        let session = Session::builder()
            .topology(machine().topology().clone())
            .control_threads(0)
            .adaptive(spec)
            .backend(SimBackend::new(machine()))
            .build()
            .unwrap();
        let w = PhasedWorkload::rotating_stencil(2, 64.0, 8.0, 16.0, 64.0, &[2]);
        match session.run(w).unwrap_err() {
            OrwlError::Config(ConfigError::UnsupportedController { backend }) => {
                assert_eq!(backend, "numasim");
            }
            other => panic!("expected UnsupportedController, got {other:?}"),
        }
    }

    #[test]
    fn nobind_policy_simulates_the_os_placement_model() {
        let w = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[20]);
        let bound = session(Mode::Static).run(w.clone()).unwrap();
        let nobind = Session::builder()
            .topology(machine().topology().clone())
            .policy(Policy::NoBind)
            .control_threads(0)
            .backend(SimBackend::new(machine()))
            .build()
            .unwrap()
            .run(w)
            .unwrap();
        assert_eq!(nobind.plan.placement.bound_fraction(), 0.0);
        // The unpinned, migration-penalised run is slower than TreeMatch.
        assert!(nobind.time.seconds() > bound.time.seconds());
    }
}
