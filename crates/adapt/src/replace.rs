//! Re-placement with a migration budget.
//!
//! When drift is detected, the [`Replacer`] recomputes a TreeMatch
//! placement from the live matrix and decides whether migrating is worth
//! it: moving a task's working set is not free, so the predicted hop-byte
//! savings per epoch, amortised over a payback horizon, must exceed the
//! one-off migration bill (bytes moved × inter-leaf hop distance).  All
//! quantities are in hop-bytes, the unit the TreeMatch literature uses, so
//! gain and cost are directly comparable.

use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::hop_bytes;
use orwl_topo::topology::Topology;
use orwl_treematch::algorithm::{PlacementScratch, TreeMatchConfig, TreeMatchMapper};
use orwl_treematch::control::ControlThreadSpec;
use orwl_treematch::mapping::Placement;

/// Cost model for moving one task's state between processing units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCostModel {
    /// Bytes of task-private state (working set, stack, halo buffers) that
    /// effectively move when a task is re-bound.
    pub task_state_bytes: f64,
}

impl MigrationCostModel {
    /// Hop-byte bill for migrating from the placement `old` to `new`:
    /// `Σ task_state_bytes · hops(old_pu, new_pu)` over re-bound tasks.
    /// Tasks that stay put, or that were/stay unbound, cost nothing —
    /// unbound threads carry no locality to destroy.
    pub fn migration_cost(&self, topo: &Topology, old: &Placement, new: &Placement) -> f64 {
        let mut cost = 0.0;
        for (o, n) in old.compute.iter().zip(&new.compute) {
            if let (Some(a), Some(b)) = (o, n) {
                if a != b {
                    cost += self.task_state_bytes * topo.hop_distance(*a, *b) as f64;
                }
            }
        }
        cost
    }
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        // One 256 KiB block per task — the LK23 working-set order of
        // magnitude at the paper's problem sizes.
        MigrationCostModel { task_state_bytes: 256.0 * 1024.0 }
    }
}

/// Tuning of a [`Replacer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplacerConfig {
    /// The migration cost model.
    pub model: MigrationCostModel,
    /// Number of future epochs the predicted per-epoch savings are assumed
    /// to persist (the payback horizon the migration bill is amortised
    /// over).
    pub horizon_epochs: f64,
    /// Minimum relative improvement (`savings / current cost`) required
    /// before migrating, independent of the migration bill.
    pub min_relative_gain: f64,
}

impl Default for ReplacerConfig {
    fn default() -> Self {
        ReplacerConfig { model: MigrationCostModel::default(), horizon_epochs: 10.0, min_relative_gain: 0.05 }
    }
}

/// Why the replacer kept the current placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The candidate placement is no better on the live matrix.
    NoImprovement,
    /// The improvement exists but is below `min_relative_gain`.
    BelowMinGain,
    /// Amortised savings do not cover the migration bill.
    MigrationTooExpensive,
}

/// Outcome of a re-placement evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep the current placement.
    Keep {
        /// Why migration was rejected.
        reason: KeepReason,
        /// Predicted hop-byte savings per epoch of the rejected candidate.
        predicted_gain_per_epoch: f64,
    },
    /// Migrate to a new placement.
    Migrate {
        /// The placement to publish.
        placement: Placement,
        /// Predicted hop-byte savings per epoch.
        predicted_gain_per_epoch: f64,
        /// One-off migration bill in hop-bytes.
        migration_cost: f64,
    },
}

/// Recomputes placements from live matrices and charges migrations against
/// their predicted savings.
#[derive(Debug, Clone)]
pub struct Replacer {
    config: ReplacerConfig,
}

impl Replacer {
    /// Creates a replacer.
    pub fn new(config: ReplacerConfig) -> Self {
        Replacer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReplacerConfig {
        &self.config
    }

    /// Evaluates whether to migrate away from `current` given the live
    /// matrix.  `n_control` control threads are re-placed alongside the
    /// compute threads, exactly as in the initial Algorithm 1 run.
    pub fn evaluate(
        &self,
        topo: &Topology,
        live: &CommMatrix,
        current: &Placement,
        n_control: usize,
    ) -> Decision {
        self.evaluate_with(topo, live, current, n_control, &mut PlacementScratch::new())
    }

    /// Allocation-reusing variant of [`Replacer::evaluate`]: the candidate
    /// TreeMatch placement is computed through the caller's
    /// [`PlacementScratch`], so an engine evaluating a migration every
    /// drift epoch stops allocating dense per-level matrices.
    pub fn evaluate_with(
        &self,
        topo: &Topology,
        live: &CommMatrix,
        current: &Placement,
        n_control: usize,
        scratch: &mut PlacementScratch,
    ) -> Decision {
        let mapper =
            TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(n_control) });
        let candidate = mapper.compute_placement_with(topo, live, scratch);

        let current_cost = hop_bytes(live, topo, &current.compute_mapping_or_zero());
        let candidate_cost = hop_bytes(live, topo, &candidate.compute_mapping_or_zero());
        let gain = current_cost - candidate_cost;

        if gain <= 0.0 {
            return Decision::Keep { reason: KeepReason::NoImprovement, predicted_gain_per_epoch: gain };
        }
        if current_cost > 0.0 && gain / current_cost < self.config.min_relative_gain {
            return Decision::Keep { reason: KeepReason::BelowMinGain, predicted_gain_per_epoch: gain };
        }
        let migration_cost = self.config.model.migration_cost(topo, current, &candidate);
        if gain * self.config.horizon_epochs <= migration_cost {
            return Decision::Keep {
                reason: KeepReason::MigrationTooExpensive,
                predicted_gain_per_epoch: gain,
            };
        }
        Decision::Migrate { placement: candidate, predicted_gain_per_epoch: gain, migration_cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns::{stencil_2d_directional, stencil_2d_rotated, StencilSpec};
    use orwl_topo::synthetic;
    use orwl_treematch::policies::{compute_placement, Policy};

    fn spec() -> StencilSpec {
        StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 8.0 }
    }

    #[test]
    fn optimal_placement_is_kept() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let m = stencil_2d_directional(&spec(), 4096.0, 64.0);
        let current = compute_placement(Policy::TreeMatch, &topo, &m, 0);
        let replacer = Replacer::new(ReplacerConfig::default());
        match replacer.evaluate(&topo, &m, &current, 0) {
            Decision::Keep { .. } => {}
            other => panic!("expected Keep for the matrix the placement was computed from, got {other:?}"),
        }
    }

    #[test]
    fn rotated_pattern_triggers_migration_with_positive_gain() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let before = stencil_2d_directional(&spec(), 4096.0, 64.0);
        let after = stencil_2d_rotated(&spec(), 4096.0, 64.0);
        let current = compute_placement(Policy::TreeMatch, &topo, &before, 0);
        // Modest per-task state so the (large) per-epoch gain dominates.
        let replacer = Replacer::new(ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 1024.0 },
            horizon_epochs: 10.0,
            min_relative_gain: 0.05,
        });
        match replacer.evaluate(&topo, &after, &current, 0) {
            Decision::Migrate { placement, predicted_gain_per_epoch, migration_cost } => {
                assert!(predicted_gain_per_epoch > 0.0);
                assert!(migration_cost > 0.0, "some tasks must actually move");
                let new_cost = hop_bytes(&after, &topo, &placement.compute_mapping_or_zero());
                let old_cost = hop_bytes(&after, &topo, &current.compute_mapping_or_zero());
                assert!(new_cost < old_cost);
            }
            other => panic!("expected Migrate after rotation, got {other:?}"),
        }
    }

    #[test]
    fn huge_working_sets_veto_migration() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let before = stencil_2d_directional(&spec(), 4096.0, 64.0);
        let after = stencil_2d_rotated(&spec(), 4096.0, 64.0);
        let current = compute_placement(Policy::TreeMatch, &topo, &before, 0);
        let replacer = Replacer::new(ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 1.0e15 },
            horizon_epochs: 1.0,
            min_relative_gain: 0.0,
        });
        match replacer.evaluate(&topo, &after, &current, 0) {
            Decision::Keep { reason: KeepReason::MigrationTooExpensive, predicted_gain_per_epoch } => {
                assert!(predicted_gain_per_epoch > 0.0);
            }
            other => panic!("expected MigrationTooExpensive, got {other:?}"),
        }
    }

    #[test]
    fn migration_cost_counts_only_moved_bound_tasks() {
        let topo = synthetic::laptop();
        let model = MigrationCostModel { task_state_bytes: 100.0 };
        let old = Placement { compute: vec![Some(0), Some(1), None, Some(3)], control: vec![] };
        let same = old.clone();
        assert_eq!(model.migration_cost(&topo, &old, &same), 0.0);
        let moved = Placement { compute: vec![Some(2), Some(1), Some(5), None], control: vec![] };
        // Only task 0 counts: task 1 stays, tasks 2 and 3 have an unbound side.
        let expected = 100.0 * topo.hop_distance(0, 2) as f64;
        assert_eq!(model.migration_cost(&topo, &old, &moved), expected);
    }
}
