//! Drift detection: has the live communication pattern moved far enough
//! from the one the current placement was computed for?
//!
//! The detector compares two matrices **under the same mapping** with the
//! cost metric the placement itself optimises
//! ([`orwl_comm::metrics::mapping_cost_default`]).  Both matrices are
//! volume-normalised first, so a uniform speed-up or slow-down of the whole
//! application (same structure, different rate) produces a delta of zero —
//! only *structural* change counts.  Firing is guarded two ways:
//!
//! * **patience** — the relative delta must exceed the threshold for a
//!   number of consecutive epochs, filtering one-epoch noise;
//! * **cooldown** — after a fire (typically followed by a migration) the
//!   detector holds off for a few epochs so the system settles before the
//!   next decision, preventing oscillation (hysteresis).

use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::mapping_cost_default;
use orwl_topo::topology::Topology;

/// Tuning of a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative cost-delta above which an epoch counts as drifted.
    pub threshold: f64,
    /// Consecutive drifted epochs required before firing.
    pub patience: usize,
    /// Epochs to ignore right after a fire / reset (hysteresis).
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { threshold: 0.15, patience: 1, cooldown: 1 }
    }
}

/// One epoch's drift measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftObservation {
    /// Cost of the current mapping on the (normalised) baseline matrix.
    pub baseline_cost: f64,
    /// Cost of the current mapping on the (normalised) live matrix.
    pub live_cost: f64,
    /// Relative structural delta in `[0, 1]`.
    pub delta: f64,
    /// Whether this epoch was over the threshold.
    pub over_threshold: bool,
    /// Whether this epoch landed inside a post-fire cooldown window.
    pub in_cooldown: bool,
    /// Whether the detector fired (threshold + patience + cooldown).
    pub fired: bool,
}

impl DriftObservation {
    /// The decision as a telemetry outcome (how the epoch is classified in
    /// the `orwl-obs/v1` timeline).
    #[must_use]
    pub fn outcome(&self) -> orwl_obs::DriftOutcome {
        if self.fired {
            orwl_obs::DriftOutcome::Fired
        } else if self.in_cooldown {
            orwl_obs::DriftOutcome::Cooldown
        } else if self.over_threshold {
            orwl_obs::DriftOutcome::SuppressedByPatience
        } else {
            orwl_obs::DriftOutcome::Quiet
        }
    }
}

/// Stateful drift detector (see the module docs for the decision rule).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    consecutive_over: usize,
    cooldown_left: usize,
}

impl DriftDetector {
    /// Creates a detector; no cooldown is pending initially.
    pub fn new(config: DriftConfig) -> Self {
        DriftDetector { config, consecutive_over: 0, cooldown_left: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Measures the structural delta between `baseline` (what the current
    /// placement was computed from) and `live` (what the monitor observed),
    /// both evaluated under `mapping` on `topo`, and advances the
    /// patience/cooldown state machine.
    pub fn observe(
        &mut self,
        topo: &Topology,
        mapping: &[usize],
        baseline: &CommMatrix,
        live: &CommMatrix,
    ) -> DriftObservation {
        let baseline_cost = mapping_cost_default(&baseline.volume_normalized(), topo, mapping);
        let live_cost = mapping_cost_default(&live.volume_normalized(), topo, mapping);
        // Relative to the larger of the two costs: symmetric in the inputs,
        // bounded by 1, and well-defined when the baseline cost is zero
        // (perfectly local placement drifting to non-local traffic).
        let scale = baseline_cost.max(live_cost);
        let delta = if scale <= f64::EPSILON { 0.0 } else { (live_cost - baseline_cost).abs() / scale };

        let over_threshold = delta > self.config.threshold;
        let in_cooldown = self.cooldown_left > 0;
        let fired = if in_cooldown {
            self.cooldown_left -= 1;
            // Cooldown epochs do not accumulate patience either.
            self.consecutive_over = 0;
            false
        } else {
            if over_threshold {
                self.consecutive_over += 1;
            } else {
                self.consecutive_over = 0;
            }
            self.consecutive_over >= self.config.patience.max(1)
        };
        if fired {
            self.arm_cooldown();
        }
        DriftObservation { baseline_cost, live_cost, delta, over_threshold, in_cooldown, fired }
    }

    /// Resets the patience counter and starts a cooldown window — called
    /// after the baseline is re-anchored (e.g. following a migration).
    pub fn arm_cooldown(&mut self) {
        self.consecutive_over = 0;
        self.cooldown_left = self.config.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns::{stencil_2d_directional, stencil_2d_rotated, StencilSpec};
    use orwl_topo::synthetic;
    use orwl_treematch::policies::{compute_placement, Policy};

    fn setup() -> (Topology, CommMatrix, Vec<usize>) {
        let topo = synthetic::cluster2016_subset(2).unwrap(); // 16 PUs
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 8.0 };
        let baseline = stencil_2d_directional(&spec, 4096.0, 64.0);
        let placement = compute_placement(Policy::TreeMatch, &topo, &baseline, 0);
        (topo, baseline, placement.compute_mapping_or_zero())
    }

    #[test]
    fn stationary_pattern_never_fires() {
        let (topo, baseline, mapping) = setup();
        let mut det = DriftDetector::new(DriftConfig { threshold: 0.01, patience: 1, cooldown: 0 });
        for scale in [1.0, 0.5, 3.0, 10.0] {
            // Same structure at a different rate: no structural drift.
            let live = baseline.scaled(scale);
            let obs = det.observe(&topo, &mapping, &baseline, &live);
            assert!(!obs.fired, "fired on stationary traffic scaled by {scale}: {obs:?}");
            assert!(obs.delta < 1e-12);
        }
    }

    #[test]
    fn rotated_stencil_fires_and_cooldown_holds() {
        let (topo, baseline, mapping) = setup();
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 8.0 };
        let rotated = stencil_2d_rotated(&spec, 4096.0, 64.0);
        let mut det = DriftDetector::new(DriftConfig { threshold: 0.15, patience: 2, cooldown: 2 });

        // Patience: the first drifted epoch does not fire yet.
        let first = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(first.over_threshold, "delta {} must exceed threshold", first.delta);
        assert!(!first.fired);
        let second = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(second.fired);

        // Cooldown: immediately after firing, the same drift is ignored.
        let third = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(!third.fired);
        let fourth = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(!fourth.fired);
        // Cooldown over: patience accumulates again.
        let fifth = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(!fifth.fired);
        let sixth = det.observe(&topo, &mapping, &baseline, &rotated);
        assert!(sixth.fired);
    }

    #[test]
    fn noise_below_threshold_resets_patience() {
        let (topo, baseline, mapping) = setup();
        let spec = StencilSpec { rows: 4, cols: 4, edge_volume: 0.0, corner_volume: 8.0 };
        let rotated = stencil_2d_rotated(&spec, 4096.0, 64.0);
        let mut det = DriftDetector::new(DriftConfig { threshold: 0.15, patience: 2, cooldown: 0 });
        assert!(!det.observe(&topo, &mapping, &baseline, &rotated).fired);
        // A clean epoch in between resets the streak.
        assert!(!det.observe(&topo, &mapping, &baseline, &baseline).fired);
        assert!(!det.observe(&topo, &mapping, &baseline, &rotated).fired);
        assert!(det.observe(&topo, &mapping, &baseline, &rotated).fired);
    }

    #[test]
    fn empty_matrices_are_quiet() {
        let (topo, _, mapping) = setup();
        let zero = CommMatrix::zeros(16);
        let mut det = DriftDetector::new(DriftConfig::default());
        let obs = det.observe(&topo, &mapping, &zero, &zero);
        assert_eq!(obs.delta, 0.0);
        assert!(!obs.fired);
    }
}
