//! The adaptive loop driven against the discrete-event simulator, plus the
//! phase-changing workload and the static/adaptive/oracle harness.
//!
//! The simulator plays the role of the paper's 192-core testbed, so this
//! module is where the subsystem's headline claim is measured: on a
//! workload whose stencil pattern rotates mid-run, the adaptive policy's
//! cumulative hop-bytes must beat the static initial placement and come
//! close to an *oracle* that re-maps for free at the exact phase boundary.
//!
//! The adaptive driver is honest about its information: the detector sees
//! only what the [`SimMonitor`] hooks observed, epoch by epoch — it has no
//! knowledge of where phase boundaries are.

use crate::drift::{DriftConfig, DriftDetector};
use crate::online::OnlineCommMatrix;
use crate::replace::{Decision, Replacer, ReplacerConfig};
use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::hop_bytes;
use orwl_comm::patterns::{stencil_2d_directional, stencil_2d_rotated, StencilSpec};
use orwl_numasim::exec::{simulate_monitored, SimMonitor};
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_treematch::algorithm::{TreeMatchConfig, TreeMatchMapper};
use orwl_treematch::control::ControlThreadSpec;
use orwl_treematch::mapping::Placement;

/// One phase of a phase-changing workload.
#[derive(Debug, Clone)]
pub struct Phase {
    /// The task graph executed during the phase.
    pub graph: TaskGraph,
    /// Number of iterations the phase lasts.
    pub iterations: usize,
}

/// A workload whose communication pattern changes at known (to the harness,
/// not to the adaptive policy) phase boundaries.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Total iterations over all phases.
    pub fn total_iterations(&self) -> usize {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// Number of tasks (identical across phases by construction).
    ///
    /// # Panics
    /// Panics when phases disagree on the task count or none exist.
    pub fn n_tasks(&self) -> usize {
        let n = self.phases.first().expect("workload has at least one phase").graph.n_tasks();
        assert!(self.phases.iter().all(|p| p.graph.n_tasks() == n), "phases must share the task set");
        n
    }

    /// The canonical phase-changing workload of the evaluation: a
    /// directionally-swept stencil whose sweep axis rotates 90° between
    /// phases (heavy east-west halos, then heavy north-south).
    ///
    /// `side × side` tasks; `heavy`/`light` are the per-axis halo volumes;
    /// each task computes `elements` points over `phase_iterations.len()`
    /// phases (phase `k` uses the rotated pattern when `k` is odd).
    pub fn rotating_stencil(
        side: usize,
        heavy: f64,
        light: f64,
        elements: f64,
        private_bytes: f64,
        phase_iterations: &[usize],
    ) -> Self {
        let spec = StencilSpec { rows: side, cols: side, edge_volume: 0.0, corner_volume: light / 8.0 };
        let a = stencil_2d_directional(&spec, heavy, light);
        let b = stencil_2d_rotated(&spec, heavy, light);
        let phases = phase_iterations
            .iter()
            .enumerate()
            .map(|(k, &iterations)| Phase {
                graph: TaskGraph::from_matrix(if k % 2 == 0 { &a } else { &b }, elements, private_bytes),
                iterations,
            })
            .collect();
        PhasedWorkload { phases }
    }
}

/// Tuning of the simulator-side adaptive driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimAdaptConfig {
    /// Iterations per monitoring epoch.
    pub epoch_iterations: usize,
    /// Decay of the online matrix.
    pub decay: f64,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// Replacer tuning.
    pub replacer: ReplacerConfig,
}

impl Default for SimAdaptConfig {
    fn default() -> Self {
        SimAdaptConfig {
            epoch_iterations: 4,
            decay: 0.25,
            drift: DriftConfig::default(),
            replacer: ReplacerConfig::default(),
        }
    }
}

/// Outcome of one policy on a [`PhasedWorkload`].
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Simulated wall-clock seconds, including migration stalls.
    pub total_time: f64,
    /// Cumulative hop-bytes over every iteration (plus, for the adaptive
    /// policy, the hop-bytes of migrating task state).
    pub cumulative_hop_bytes: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// Per-epoch drift deltas observed (adaptive policy only).
    pub drift_deltas: Vec<f64>,
    /// Policy label.
    pub label: String,
}

fn treematch_placement(machine: &SimMachine, m: &CommMatrix) -> Placement {
    let mapper = TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(0) });
    mapper.compute_placement(machine.topology(), m)
}

fn mapping_of(machine: &SimMachine, placement: &Placement) -> Vec<usize> {
    let pus = machine.topology().pu_os_indices();
    placement.compute_mapping_with(|t| pus[t % pus.len()])
}

/// Runs `workload` with the placement computed from the *first* phase and
/// never re-mapped — the paper's static pipeline applied to a drifting
/// workload.
pub fn run_static(machine: &SimMachine, workload: &PhasedWorkload) -> SimOutcome {
    let placement = treematch_placement(machine, &workload.phases[0].graph.comm_matrix().symmetrized());
    run_fixed_schedule(machine, workload, |_phase| placement.clone(), "static-initial")
}

/// Runs `workload` with an oracle that re-maps **for free** at every phase
/// boundary: the unbeatable reference the adaptive policy is measured
/// against.
pub fn run_oracle(machine: &SimMachine, workload: &PhasedWorkload) -> SimOutcome {
    let placements: Vec<Placement> = workload
        .phases
        .iter()
        .map(|p| treematch_placement(machine, &p.graph.comm_matrix().symmetrized()))
        .collect();
    run_fixed_schedule(machine, workload, |phase| placements[phase].clone(), "oracle")
}

fn run_fixed_schedule(
    machine: &SimMachine,
    workload: &PhasedWorkload,
    placement_for_phase: impl Fn(usize) -> Placement,
    label: &str,
) -> SimOutcome {
    let mut total_time = 0.0;
    let mut cumulative_hop_bytes = 0.0;
    for (k, phase) in workload.phases.iter().enumerate() {
        let placement = placement_for_phase(k);
        let mapping = mapping_of(machine, &placement);
        let scenario = ExecutionScenario::bound(machine, mapping.clone()).with_label(label);
        let report = orwl_numasim::exec::simulate(machine, &phase.graph, &scenario, phase.iterations);
        total_time += report.total_time;
        cumulative_hop_bytes +=
            phase.iterations as f64 * hop_bytes(&phase.graph.comm_matrix(), machine.topology(), &mapping);
    }
    SimOutcome {
        total_time,
        cumulative_hop_bytes,
        migrations: 0,
        drift_deltas: Vec::new(),
        label: label.to_string(),
    }
}

struct RecordingMonitor<'a> {
    online: &'a mut OnlineCommMatrix,
}

impl SimMonitor for RecordingMonitor<'_> {
    fn on_transfer(&mut self, _iteration: usize, src: usize, dst: usize, bytes: f64) {
        self.online.record(src, dst, bytes);
    }
}

/// Runs `workload` under the full online loop: monitor (through the
/// executor's [`SimMonitor`] hooks) → epoch roll → drift detection →
/// budgeted re-placement, paying for every migration both in time (moving
/// task state across the interconnect) and in hop-bytes.
pub fn run_adaptive(machine: &SimMachine, workload: &PhasedWorkload, config: &SimAdaptConfig) -> SimOutcome {
    let n = workload.n_tasks();
    let topo = machine.topology();
    let mut placement = treematch_placement(machine, &workload.phases[0].graph.comm_matrix().symmetrized());
    let mut baseline = workload.phases[0].graph.comm_matrix().symmetrized();
    let mut online = OnlineCommMatrix::new(n, config.decay);
    let mut detector = DriftDetector::new(config.drift);
    let replacer = Replacer::new(config.replacer);

    let mut total_time = 0.0;
    let mut cumulative_hop_bytes = 0.0;
    let mut migrations = 0usize;
    let mut drift_deltas = Vec::new();

    for phase in &workload.phases {
        let phase_matrix = phase.graph.comm_matrix();
        let mut done = 0usize;
        while done < phase.iterations {
            let chunk = config.epoch_iterations.min(phase.iterations - done);
            let mapping = mapping_of(machine, &placement);
            let scenario = ExecutionScenario::bound(machine, mapping.clone()).with_label("adaptive");
            let mut monitor = RecordingMonitor { online: &mut online };
            let report = simulate_monitored(machine, &phase.graph, &scenario, chunk, &mut monitor);
            total_time += report.total_time;
            cumulative_hop_bytes += chunk as f64 * hop_bytes(&phase_matrix, topo, &mapping);
            done += chunk;

            // Epoch boundary: roll the window and decide.
            online.roll_epoch();
            if !online.is_warmed_up() {
                continue;
            }
            let live = online.smoothed_symmetric();
            let observation = detector.observe(topo, &mapping, &baseline, &live);
            drift_deltas.push(observation.delta);
            if !observation.fired {
                continue;
            }
            if let Decision::Migrate { placement: next, migration_cost, .. } =
                replacer.evaluate(topo, &live, &placement, 0)
            {
                // Pay for the migration: the moved bytes are charged both
                // as hop-bytes (the metric) and as interconnect time (the
                // simulated stall while working sets move).
                cumulative_hop_bytes += migration_cost;
                total_time += migration_cost / machine.params().interconnect_bandwidth;
                placement = next;
                baseline = live.clone();
                detector.arm_cooldown();
                migrations += 1;
            }
        }
    }
    SimOutcome { total_time, cumulative_hop_bytes, migrations, drift_deltas, label: "adaptive".to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replace::MigrationCostModel;
    use orwl_numasim::costmodel::CostParams;
    use orwl_topo::synthetic;

    fn machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
    }

    fn workload() -> PhasedWorkload {
        PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200])
    }

    fn config() -> SimAdaptConfig {
        SimAdaptConfig {
            epoch_iterations: 4,
            decay: 0.2,
            drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
            replacer: ReplacerConfig {
                model: MigrationCostModel { task_state_bytes: 131072.0 },
                horizon_epochs: 20.0,
                min_relative_gain: 0.05,
            },
        }
    }

    #[test]
    fn workload_shape_is_consistent() {
        let w = workload();
        assert_eq!(w.n_tasks(), 16);
        assert_eq!(w.total_iterations(), 224);
        // The two phases carry the same total traffic but different matrices.
        let a = w.phases[0].graph.comm_matrix();
        let b = w.phases[1].graph.comm_matrix();
        assert!((a.total_volume() - b.total_volume()).abs() < 1e-6);
        assert_ne!(a, b);
    }

    #[test]
    fn single_phase_workload_never_migrates() {
        let m = machine();
        let w = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[40]);
        let adaptive = run_adaptive(&m, &w, &config());
        assert_eq!(adaptive.migrations, 0);
        // With no drift the adaptive run's hop-bytes equal the static run's.
        let fixed = run_static(&m, &w);
        assert!((adaptive.cumulative_hop_bytes - fixed.cumulative_hop_bytes).abs() < 1e-6);
    }

    #[test]
    fn adaptive_beats_static_and_approaches_oracle() {
        let m = machine();
        let w = workload();
        let cfg = config();
        let fixed = run_static(&m, &w);
        let oracle = run_oracle(&m, &w);
        let adaptive = run_adaptive(&m, &w, &cfg);

        assert!(adaptive.migrations >= 1, "phase change must trigger a migration: {adaptive:?}");
        assert!(
            adaptive.cumulative_hop_bytes < fixed.cumulative_hop_bytes,
            "adaptive {} must beat static {}",
            adaptive.cumulative_hop_bytes,
            fixed.cumulative_hop_bytes
        );
        assert!(
            oracle.cumulative_hop_bytes <= adaptive.cumulative_hop_bytes + 1e-9,
            "the free-remap oracle is a lower bound"
        );
        let ratio = adaptive.cumulative_hop_bytes / oracle.cumulative_hop_bytes;
        assert!(ratio <= 1.10, "adaptive must be within 10% of the oracle, got {ratio:.3}");
    }

    #[test]
    fn oracle_wall_clock_is_no_worse_than_static() {
        let m = machine();
        let w = workload();
        let fixed = run_static(&m, &w);
        let oracle = run_oracle(&m, &w);
        assert!(oracle.total_time <= fixed.total_time * 1.0001);
    }
}
