//! The legacy simulator harness: the bespoke static/adaptive/oracle trio
//! that predates the unified `Session` API.
//!
//! [`run_static`], [`run_adaptive`] and [`run_oracle`] are **deprecated**:
//! new code builds a [`Session`](orwl_core::session::Session) over a
//! [`SimBackend`](crate::backend::SimBackend) and selects the behaviour
//! with [`Mode`](orwl_core::session::Mode).  The implementations are kept
//! verbatim (not delegating) so the `session_equivalence` integration test
//! can pin the new backend bit-for-bit against them; they will be removed
//! once that safety net has served its purpose.
//!
//! The phased workload types now live in [`orwl_numasim::workload`] and
//! are re-exported here for compatibility.

use crate::drift::{DriftConfig, DriftDetector};
use crate::online::OnlineCommMatrix;
use crate::replace::{Decision, Replacer, ReplacerConfig};
use orwl_comm::metrics::hop_bytes;
use orwl_numasim::exec::{simulate_monitored, SimMonitor};
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_treematch::algorithm::{TreeMatchConfig, TreeMatchMapper};
use orwl_treematch::control::ControlThreadSpec;
use orwl_treematch::mapping::Placement;

pub use orwl_numasim::workload::{Phase, PhasedWorkload};

/// Tuning of the simulator-side adaptive driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimAdaptConfig {
    /// Iterations per monitoring epoch.
    pub epoch_iterations: usize,
    /// Decay of the online matrix.
    pub decay: f64,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// Replacer tuning.
    pub replacer: ReplacerConfig,
}

impl Default for SimAdaptConfig {
    fn default() -> Self {
        SimAdaptConfig {
            epoch_iterations: 4,
            decay: 0.25,
            drift: DriftConfig::default(),
            replacer: ReplacerConfig::default(),
        }
    }
}

/// Outcome of one policy on a [`PhasedWorkload`].
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Simulated wall-clock seconds, including migration stalls.
    pub total_time: f64,
    /// Cumulative hop-bytes over every iteration (plus, for the adaptive
    /// policy, the hop-bytes of migrating task state).
    pub cumulative_hop_bytes: f64,
    /// Migrations performed.
    pub migrations: usize,
    /// Per-epoch drift deltas observed (adaptive policy only).
    pub drift_deltas: Vec<f64>,
    /// Policy label.
    pub label: String,
}

fn treematch_placement(machine: &SimMachine, m: &orwl_comm::matrix::CommMatrix) -> Placement {
    let mapper = TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(0) });
    mapper.compute_placement(machine.topology(), m)
}

fn mapping_of(machine: &SimMachine, placement: &Placement) -> Vec<usize> {
    let pus = machine.topology().pu_os_indices();
    placement.compute_mapping_with(|t| pus[t % pus.len()])
}

/// Runs `workload` with the placement computed from the *first* phase and
/// never re-mapped — the paper's static pipeline applied to a drifting
/// workload.
#[deprecated(since = "0.1.0", note = "use `Session` with a `SimBackend` in `Mode::Static` instead")]
pub fn run_static(machine: &SimMachine, workload: &PhasedWorkload) -> SimOutcome {
    let placement = treematch_placement(machine, &workload.phases[0].graph.comm_matrix().symmetrized());
    run_fixed_schedule(machine, workload, |_phase| placement.clone(), "static-initial")
}

/// Runs `workload` with an oracle that re-maps **for free** at every phase
/// boundary: the unbeatable reference the adaptive policy is measured
/// against.
#[deprecated(since = "0.1.0", note = "use `Session` with a `SimBackend` in `Mode::Oracle` instead")]
pub fn run_oracle(machine: &SimMachine, workload: &PhasedWorkload) -> SimOutcome {
    let placements: Vec<Placement> = workload
        .phases
        .iter()
        .map(|p| treematch_placement(machine, &p.graph.comm_matrix().symmetrized()))
        .collect();
    run_fixed_schedule(machine, workload, |phase| placements[phase].clone(), "oracle")
}

fn run_fixed_schedule(
    machine: &SimMachine,
    workload: &PhasedWorkload,
    placement_for_phase: impl Fn(usize) -> Placement,
    label: &str,
) -> SimOutcome {
    let mut total_time = 0.0;
    let mut cumulative_hop_bytes = 0.0;
    for (k, phase) in workload.phases.iter().enumerate() {
        let placement = placement_for_phase(k);
        let mapping = mapping_of(machine, &placement);
        let scenario = ExecutionScenario::bound(machine, mapping.clone()).with_label(label);
        let report = orwl_numasim::exec::simulate(machine, &phase.graph, &scenario, phase.iterations);
        total_time += report.total_time;
        cumulative_hop_bytes +=
            phase.iterations as f64 * hop_bytes(&phase.graph.comm_matrix(), machine.topology(), &mapping);
    }
    SimOutcome {
        total_time,
        cumulative_hop_bytes,
        migrations: 0,
        drift_deltas: Vec::new(),
        label: label.to_string(),
    }
}

struct RecordingMonitor<'a> {
    online: &'a mut OnlineCommMatrix,
}

impl SimMonitor for RecordingMonitor<'_> {
    fn on_transfer(&mut self, _iteration: usize, src: usize, dst: usize, bytes: f64) {
        self.online.record(src, dst, bytes);
    }
}

/// Runs `workload` under the full online loop: monitor (through the
/// executor's [`SimMonitor`] hooks) → epoch roll → drift detection →
/// budgeted re-placement, paying for every migration both in time (moving
/// task state across the interconnect) and in hop-bytes.
#[deprecated(since = "0.1.0", note = "use `Session` with a `SimBackend` in `Mode::Adaptive` instead")]
pub fn run_adaptive(machine: &SimMachine, workload: &PhasedWorkload, config: &SimAdaptConfig) -> SimOutcome {
    let n = workload.n_tasks();
    let topo = machine.topology();
    let mut placement = treematch_placement(machine, &workload.phases[0].graph.comm_matrix().symmetrized());
    let mut baseline = workload.phases[0].graph.comm_matrix().symmetrized();
    let mut online = OnlineCommMatrix::new(n, config.decay);
    let mut detector = DriftDetector::new(config.drift);
    let replacer = Replacer::new(config.replacer);

    let mut total_time = 0.0;
    let mut cumulative_hop_bytes = 0.0;
    let mut migrations = 0usize;
    let mut drift_deltas = Vec::new();

    for phase in &workload.phases {
        let phase_matrix = phase.graph.comm_matrix();
        let mut done = 0usize;
        while done < phase.iterations {
            let chunk = config.epoch_iterations.min(phase.iterations - done);
            let mapping = mapping_of(machine, &placement);
            let scenario = ExecutionScenario::bound(machine, mapping.clone()).with_label("adaptive");
            let mut monitor = RecordingMonitor { online: &mut online };
            let report = simulate_monitored(machine, &phase.graph, &scenario, chunk, &mut monitor);
            total_time += report.total_time;
            cumulative_hop_bytes += chunk as f64 * hop_bytes(&phase_matrix, topo, &mapping);
            done += chunk;

            // Epoch boundary: roll the window and decide.
            online.roll_epoch();
            if !online.is_warmed_up() {
                continue;
            }
            let live = online.smoothed_symmetric();
            let observation = detector.observe(topo, &mapping, &baseline, &live);
            drift_deltas.push(observation.delta);
            if !observation.fired {
                continue;
            }
            if let Decision::Migrate { placement: next, migration_cost, .. } =
                replacer.evaluate(topo, &live, &placement, 0)
            {
                // Pay for the migration: the moved bytes are charged both
                // as hop-bytes (the metric) and as interconnect time (the
                // simulated stall while working sets move).
                cumulative_hop_bytes += migration_cost;
                total_time += migration_cost / machine.params().interconnect_bandwidth;
                placement = next;
                baseline = live.clone();
                detector.arm_cooldown();
                migrations += 1;
            }
        }
    }
    SimOutcome { total_time, cumulative_hop_bytes, migrations, drift_deltas, label: "adaptive".to_string() }
}

#[cfg(test)]
mod tests {
    // The legacy trio stays covered until the golden-equivalence safety net
    // lets it be deleted.
    #![allow(deprecated)]

    use super::*;
    use crate::replace::MigrationCostModel;
    use orwl_numasim::costmodel::CostParams;
    use orwl_topo::synthetic;

    fn machine() -> SimMachine {
        SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
    }

    fn workload() -> PhasedWorkload {
        PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200])
    }

    fn config() -> SimAdaptConfig {
        SimAdaptConfig {
            epoch_iterations: 4,
            decay: 0.2,
            drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
            replacer: ReplacerConfig {
                model: MigrationCostModel { task_state_bytes: 131072.0 },
                horizon_epochs: 20.0,
                min_relative_gain: 0.05,
            },
        }
    }

    #[test]
    fn legacy_adaptive_beats_static_and_approaches_oracle() {
        let m = machine();
        let w = workload();
        let cfg = config();
        let fixed = run_static(&m, &w);
        let oracle = run_oracle(&m, &w);
        let adaptive = run_adaptive(&m, &w, &cfg);

        assert!(adaptive.migrations >= 1, "phase change must trigger a migration: {adaptive:?}");
        assert!(adaptive.cumulative_hop_bytes < fixed.cumulative_hop_bytes);
        assert!(oracle.cumulative_hop_bytes <= adaptive.cumulative_hop_bytes + 1e-9);
        let ratio = adaptive.cumulative_hop_bytes / oracle.cumulative_hop_bytes;
        assert!(ratio <= 1.10, "adaptive must be within 10% of the oracle, got {ratio:.3}");
    }
}
