//! Failure-driven re-sharding: re-home a dead node's tasks onto the
//! survivors.
//!
//! When a node is confirmed lost mid-run, its tasks are orphaned but the
//! run can continue degraded: the orphans are migrated to surviving
//! nodes, with the rest of the placement left untouched — only the
//! affected shard moves (recomputing the whole placement would migrate
//! healthy tasks whose state is still warm).  The assignment is a greedy
//! attraction heuristic over the communication matrix: orphans are
//! placed heaviest-first on the survivor where their traffic partners
//! sit, weighted by fabric affinity, under an even capacity bound so one
//! survivor cannot absorb the whole shard.  Pure and deterministic —
//! the coordinator, the simulator and the tests all get the same answer
//! for the same inputs.

use orwl_comm::matrix::CommMatrix;

/// The result of re-sharding after one node loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardPlan {
    /// The post-loss routing: node hosting each task.  Survivor-resident
    /// tasks keep their node; every task previously on the dead node is
    /// re-homed.
    pub node_of_task: Vec<usize>,
    /// The orphaned tasks that moved, in placement order (heaviest
    /// total traffic first, ties by task index).
    pub migrated_tasks: Vec<usize>,
    /// The node whose loss this plan answers.
    pub dead: usize,
}

/// Computes the post-loss shard migration.
///
/// `affinity(a, b)` scores the attraction between nodes `a` and `b` —
/// higher is closer; `affinity(n, n)` weights traffic to tasks already
/// resident on the candidate node itself and should dominate.  Each
/// orphan goes to the survivor maximising the affinity-weighted traffic
/// to already-placed tasks (earlier orphan placements included), subject
/// to a capacity of `ceil(n_tasks / n_survivors)` tasks per node; ties
/// break toward the lower node index.  `down` names nodes lost in
/// *earlier* episodes: they host nothing (their shards already moved)
/// but must never be picked as a home again.
///
/// # Panics
/// Panics when `dead` is out of range, when no survivor exists, or when
/// `node_of_task` disagrees with the matrix order.
#[must_use]
pub fn reshard_after_loss(
    comm: &CommMatrix,
    node_of_task: &[usize],
    n_nodes: usize,
    dead: usize,
    down: &[usize],
    affinity: &dyn Fn(usize, usize) -> f64,
) -> ReshardPlan {
    let n_tasks = node_of_task.len();
    assert_eq!(comm.order(), n_tasks, "matrix order must match the routing table");
    assert!(dead < n_nodes, "dead node {dead} out of range ({n_nodes} nodes)");
    assert!(n_nodes > 1 + down.len(), "no survivors to re-shard onto");

    let mut routing = node_of_task.to_vec();
    let mut load = vec![0usize; n_nodes];
    for &node in &routing {
        assert!(node < n_nodes, "routing table names node {node} of {n_nodes}");
        load[node] += 1;
    }
    let capacity = n_tasks.div_ceil(n_nodes - 1 - down.len());

    // Heaviest orphans place first: they have the most to lose from a
    // poor home, and their placement pulls their lighter partners after
    // them through the attraction term.
    let volume = |t: usize| -> f64 { (0..n_tasks).map(|u| comm.get(t, u) + comm.get(u, t)).sum() };
    let mut orphans: Vec<usize> = (0..n_tasks).filter(|&t| routing[t] == dead).collect();
    orphans.sort_by(|&a, &b| volume(b).partial_cmp(&volume(a)).unwrap().then(a.cmp(&b)));

    for &t in &orphans {
        let mut best: Option<(usize, f64)> = None;
        for node in (0..n_nodes).filter(|&n| n != dead && !down.contains(&n) && load[n] < capacity) {
            let score: f64 = (0..n_tasks)
                .filter(|&u| u != t && routing[u] != dead)
                .map(|u| (comm.get(t, u) + comm.get(u, t)) * affinity(node, routing[u]))
                .sum();
            let better = match best {
                None => true,
                Some((_, s)) => score > s + f64::EPSILON * s.abs(),
            };
            if better {
                best = Some((node, score));
            }
        }
        let (home, _) = best.expect("capacity is ceil(tasks/survivors), so a survivor always has room");
        routing[t] = home;
        load[home] += 1;
    }

    ReshardPlan { node_of_task: routing, migrated_tasks: orphans, dead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;

    /// Same node attracts fully, any other node not at all — makes the
    /// expected outcome easy to reason about in tests.
    fn local_affinity(a: usize, b: usize) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn orphans_follow_their_traffic_partners() {
        // A heavy pair on node 0, a heavy group of 4 on node 2, and node 1
        // holding two tasks talking only to node 0's pair.  The capacity
        // (ceil(8/2) = 4) leaves node 0 room for both orphans.
        let mut m = CommMatrix::zeros(8);
        m.set(0, 1, 1000.0);
        m.set(1, 0, 1000.0);
        for i in 2..6 {
            for j in 2..6 {
                if i != j {
                    m.set(i, j, 1000.0);
                }
            }
        }
        m.set(6, 0, 500.0);
        m.set(7, 1, 500.0);
        let routing = vec![0, 0, 2, 2, 2, 2, 1, 1];
        let plan = reshard_after_loss(&m, &routing, 3, 1, &[], &local_affinity);
        assert_eq!(plan.dead, 1);
        assert_eq!(plan.migrated_tasks.len(), 2);
        // Both orphans talk only to node 0's residents.
        assert_eq!(plan.node_of_task[6], 0);
        assert_eq!(plan.node_of_task[7], 0);
        // Nothing else moved.
        for (t, &home) in routing.iter().enumerate().take(6) {
            assert_eq!(plan.node_of_task[t], home, "task {t} must not move");
        }
        assert!(!plan.node_of_task.contains(&1), "the dead node hosts nothing");
    }

    #[test]
    fn capacity_bounds_spread_a_heavy_shard() {
        // Every task talks to node 0; without the capacity bound all six
        // orphans would pile onto it.
        let mut m = CommMatrix::zeros(9);
        for t in 3..9 {
            m.set(t, 0, 100.0);
        }
        let routing = vec![0, 1, 1, 2, 2, 2, 2, 2, 2];
        let plan = reshard_after_loss(&m, &routing, 3, 2, &[], &local_affinity);
        let mut load = vec![0usize; 3];
        for &n in &plan.node_of_task {
            load[n] += 1;
        }
        assert_eq!(load[2], 0);
        let capacity = 9usize.div_ceil(2);
        assert!(load[0] <= capacity && load[1] <= capacity, "load {load:?} over capacity {capacity}");
        assert_eq!(plan.migrated_tasks.len(), 6);
    }

    #[test]
    fn reshard_is_deterministic_and_ties_break_low() {
        // Orphans with no traffic at all: every survivor scores 0, so
        // they fill the lowest-indexed survivor first up to capacity.
        let m = CommMatrix::zeros(4);
        let routing = vec![1, 1, 1, 1];
        let a = reshard_after_loss(&m, &routing, 3, 1, &[], &local_affinity);
        let b = reshard_after_loss(&m, &routing, 3, 1, &[], &local_affinity);
        assert_eq!(a, b);
        let capacity = 4usize.div_ceil(2);
        assert_eq!(a.node_of_task.iter().filter(|&&n| n == 0).count(), capacity);
        assert_eq!(a.node_of_task.iter().filter(|&&n| n == 2).count(), capacity);
        // Heaviest-first with zero volume falls back to task order.
        assert_eq!(a.migrated_tasks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fabric_affinity_prefers_the_same_rack() {
        // The orphan talks to a task on node 0 (far rack) and, slightly
        // less, to one on node 2 (same rack as both survivors' traffic
        // partner)... simpler: partner on node 0 only, but node 1 is in
        // node 0's rack while node 2 is across the spine.  With a
        // rack-aware affinity the orphan lands in the partner's rack.
        let mut m = CommMatrix::zeros(4);
        m.set(3, 0, 100.0);
        let routing = vec![0, 1, 2, 3];
        let rack_of = [0usize, 0, 1, 1]; // nodes 0,1 rack 0; nodes 2,3 rack 1
        let affinity = |a: usize, b: usize| {
            if a == b {
                1.0
            } else if rack_of[a] == rack_of[b] {
                0.5
            } else {
                0.1
            }
        };
        let plan = reshard_after_loss(&m, &routing, 4, 3, &[], &affinity);
        // Node 0 itself has room (capacity 2), so the orphan joins its
        // partner directly.
        assert_eq!(plan.node_of_task[3], 0);

        // Fill node 0 to capacity with quiet residents: now the orphan
        // must pick between node 1 (partner's rack) and node 2.
        let mut m = CommMatrix::zeros(6);
        m.set(5, 0, 100.0);
        let routing = vec![0, 0, 1, 2, 0, 3];
        let rack_of = [0usize, 0, 1, 1];
        let affinity = |a: usize, b: usize| {
            if a == b {
                1.0
            } else if rack_of[a] == rack_of[b] {
                0.5
            } else {
                0.1
            }
        };
        let plan = reshard_after_loss(&m, &routing, 4, 3, &[], &affinity);
        assert_eq!(plan.node_of_task[5], 1, "same-rack survivor must win: {:?}", plan.node_of_task);
    }

    #[test]
    fn a_realistic_stencil_loss_moves_only_the_dead_shard() {
        let m = patterns::clustered(4, 9, 1000.0, 1.0);
        let routing: Vec<usize> = (0..36).map(|t| t / 9).collect();
        let plan = reshard_after_loss(&m, &routing, 4, 2, &[], &local_affinity);
        assert_eq!(plan.migrated_tasks.len(), 9);
        for (t, &home) in routing.iter().enumerate() {
            if home != 2 {
                assert_eq!(plan.node_of_task[t], home);
            } else {
                assert_ne!(plan.node_of_task[t], 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no survivors")]
    fn a_single_node_cluster_cannot_reshard() {
        let m = CommMatrix::zeros(2);
        let _ = reshard_after_loss(&m, &[0, 0], 1, 0, &[], &local_affinity);
    }

    #[test]
    fn a_second_loss_never_rehomes_onto_an_earlier_casualty() {
        // Node 1 died first and its shard moved to node 2; now node 2
        // dies too.  Node 1 must not re-enter the candidate pool, and the
        // capacity must tighten to the two true survivors.
        let m = patterns::clustered(4, 3, 100.0, 1.0);
        let routing = vec![0, 0, 0, 2, 2, 2, 2, 2, 2, 3, 3, 3];
        let plan = reshard_after_loss(&m, &routing, 4, 2, &[1], &local_affinity);
        assert_eq!(plan.migrated_tasks.len(), 6);
        assert!(!plan.node_of_task.contains(&1), "node 1 is down: {:?}", plan.node_of_task);
        assert!(!plan.node_of_task.contains(&2), "node 2 just died: {:?}", plan.node_of_task);
        let capacity = 12usize.div_ceil(2);
        let mut load = vec![0usize; 4];
        for &n in &plan.node_of_task {
            load[n] += 1;
        }
        assert!(load[0] <= capacity && load[3] <= capacity, "load {load:?} over capacity {capacity}");
    }

    #[test]
    #[should_panic(expected = "no survivors")]
    fn losing_every_peer_cannot_reshard() {
        let m = CommMatrix::zeros(2);
        let _ = reshard_after_loss(&m, &[0, 1], 2, 1, &[0], &local_affinity);
    }
}
