//! The adaptive engine: closes the paper's measure → aggregate → map → bind
//! loop *online* for the real event runtime.
//!
//! An [`AdaptiveEngine`] is wrapped by [`adaptive_session_spec`] and handed
//! to `Session::builder().adaptive(..)`.  The runtime then
//!
//! 1. calls [`AdaptiveController::on_run_start`] with the program's task
//!    specs and the initial TreeMatch plan (the *baseline*);
//! 2. registers the engine's [`AccessSink`]: every ORWL lock grant reports
//!    `(task, location, mode)`, from which the engine reconstructs actual
//!    transfers — a read of location `L` by task `t` moves the declared
//!    per-iteration volume from `L`'s last writer to `t` — and feeds the
//!    [`OnlineCommMatrix`];
//! 3. calls [`AdaptiveController::on_epoch`] every epoch: the engine rolls
//!    the window, runs the [`DriftDetector`] against the baseline, and on a
//!    fire asks the [`Replacer`] whether migrating pays; an accepted
//!    migration re-anchors the baseline and returns the new placement for
//!    the runtime to publish to its task threads.
//!
//! Location ids are process-unique, so the engine ignores accesses to
//! locations outside its program and concurrent runtimes can monitor
//! side by side.

use crate::drift::{DriftConfig, DriftDetector};
use crate::online::OnlineCommMatrix;
use crate::replace::{Decision, Replacer, ReplacerConfig};
use orwl_comm::matrix::CommMatrix;
use orwl_core::monitor::AccessSink;
use orwl_core::placement::PlacementPlan;
use orwl_core::request::AccessMode;
use orwl_core::runtime::AdaptiveController;
use orwl_core::task::{TaskId, TaskSpec};
use orwl_core::LocationId;
use orwl_topo::topology::Topology;
use orwl_treematch::algorithm::PlacementScratch;
use orwl_treematch::mapping::Placement;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Tuning of an [`AdaptiveEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Exponential-decay factor of the online matrix (see
    /// [`OnlineCommMatrix::new`]).
    pub decay: f64,
    /// Drift-detector tuning.
    pub drift: DriftConfig,
    /// Replacer tuning.
    pub replacer: ReplacerConfig,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig { decay: 0.25, drift: DriftConfig::default(), replacer: ReplacerConfig::default() }
    }
}

impl AdaptConfig {
    /// The tuning used throughout the evaluation (acceptance tests, the
    /// `adaptive_stencil` demo and the adaptive benchmarks) on the
    /// rotating-sweep stencil: one shared definition so the acceptance
    /// test, the golden pin, the bench and the demo cannot silently
    /// de-synchronise.
    #[must_use]
    pub fn evaluation() -> Self {
        AdaptConfig {
            decay: 0.2,
            drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
            replacer: ReplacerConfig {
                model: crate::replace::MigrationCostModel { task_state_bytes: 131072.0 },
                horizon_epochs: 20.0,
                min_relative_gain: 0.05,
            },
        }
    }
}

/// One epoch's record in the engine's timeline (for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch number (counting from 1).
    pub epoch: u64,
    /// Transfer records observed in the epoch.
    pub records: u64,
    /// Structural drift measured against the baseline.
    pub delta: f64,
    /// Whether the drift detector fired.
    pub drift_fired: bool,
    /// Whether a migration was published.
    pub migrated: bool,
}

#[derive(Debug)]
struct EngineState {
    topo: Option<Topology>,
    n_control: usize,
    /// Declared read volume per (location, reader task).
    read_bytes: HashMap<(LocationId, TaskId), f64>,
    /// Fallback volume per location for *undeclared* readers (the mean of
    /// the location's declared read volumes) — a workload whose pattern
    /// drifted is reading locations it never declared, and those transfers
    /// are exactly the ones the monitor must not drop.
    default_read: HashMap<LocationId, f64>,
    /// Last task that wrote each location.
    last_writer: HashMap<LocationId, TaskId>,
    online: OnlineCommMatrix,
    /// The matrix the current placement was computed from.
    baseline: CommMatrix,
    placement: Placement,
    detector: DriftDetector,
    replacer: Replacer,
    /// Dense placement buffers reused by every epoch's re-placement
    /// evaluation, so the adaptive loop stops allocating per-level
    /// matrices once warm.
    scratch: PlacementScratch,
    timeline: Vec<EpochRecord>,
}

/// The drift-driven re-placement engine (see module docs).
pub struct AdaptiveEngine {
    config: AdaptConfig,
    state: Mutex<EngineState>,
}

impl AdaptiveEngine {
    /// Creates an engine; it initialises itself on `on_run_start`.
    pub fn new(config: AdaptConfig) -> Arc<Self> {
        Arc::new(AdaptiveEngine {
            config,
            state: Mutex::new(EngineState {
                topo: None,
                n_control: 0,
                read_bytes: HashMap::new(),
                default_read: HashMap::new(),
                last_writer: HashMap::new(),
                online: OnlineCommMatrix::new(0, config.decay),
                baseline: CommMatrix::zeros(0),
                placement: Placement::unbound(0, 0),
                detector: DriftDetector::new(config.drift),
                replacer: Replacer::new(config.replacer),
                scratch: PlacementScratch::new(),
                timeline: Vec::new(),
            }),
        })
    }

    /// The per-epoch timeline recorded so far.
    pub fn timeline(&self) -> Vec<EpochRecord> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).timeline.clone()
    }

    /// Number of migrations published so far.
    pub fn migrations(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).timeline.iter().filter(|r| r.migrated).count()
    }

    /// The placement the engine currently considers active.
    pub fn current_placement(&self) -> Placement {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).placement.clone()
    }
}

impl AccessSink for AdaptiveEngine {
    fn on_access(&self, task: TaskId, location: LocationId, mode: AccessMode) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.default_read.contains_key(&location) {
            return; // another runtime's location
        }
        match mode {
            AccessMode::Write => {
                state.last_writer.insert(location, task);
            }
            AccessMode::Read => {
                if let Some(&writer) = state.last_writer.get(&location) {
                    if writer != task && task.0 < state.online.order() {
                        let bytes = state
                            .read_bytes
                            .get(&(location, task))
                            .or_else(|| state.default_read.get(&location))
                            .copied()
                            .unwrap_or(0.0);
                        if bytes > 0.0 {
                            state.online.record(writer.0, task.0, bytes);
                        }
                    }
                }
            }
        }
    }
}

impl AdaptiveEngine {
    /// Initialises the engine from the program about to run; called by the
    /// runtime through [`AdaptiveController::on_run_start`].
    pub fn on_run_start(&self, specs: &[TaskSpec], plan: &PlacementPlan, topo: &Topology) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.topo = Some(topo.clone());
        state.n_control = plan.placement.n_control();
        state.read_bytes.clear();
        state.default_read.clear();
        state.last_writer.clear();
        let mut read_sum: HashMap<LocationId, (f64, usize)> = HashMap::new();
        for (t, spec) in specs.iter().enumerate() {
            for link in &spec.links {
                read_sum.entry(link.location).or_insert((0.0, 0));
                if link.mode == AccessMode::Read {
                    state.read_bytes.insert((link.location, TaskId(t)), link.bytes_per_iteration);
                    let entry = read_sum.entry(link.location).or_insert((0.0, 0));
                    entry.0 += link.bytes_per_iteration;
                    entry.1 += 1;
                }
            }
        }
        for (loc, (sum, count)) in read_sum {
            state.default_read.insert(loc, if count == 0 { 0.0 } else { sum / count as f64 });
        }
        state.online = OnlineCommMatrix::new(specs.len(), self.config.decay);
        state.baseline = plan.matrix.symmetrized();
        state.placement = plan.placement.clone();
        state.detector = DriftDetector::new(self.config.drift);
        state.timeline.clear();
    }

    /// Rolls the monitoring epoch and decides on drift / migration; called
    /// by the runtime through [`AdaptiveController::on_epoch`].
    pub fn on_epoch(&self, epoch: u64) -> Option<Placement> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let records = state.online.roll_epoch();
        if !state.online.is_warmed_up() {
            state.timeline.push(EpochRecord {
                epoch,
                records,
                delta: 0.0,
                drift_fired: false,
                migrated: false,
            });
            return None;
        }
        let topo = state.topo.clone().expect("on_run_start ran before on_epoch");
        let live = state.online.smoothed_symmetric();
        let mapping = state.placement.compute_mapping_or_zero();
        let observation = {
            let baseline = state.baseline.clone();
            state.detector.observe(&topo, &mapping, &baseline, &live)
        };
        orwl_obs::emit(orwl_obs::EventKind::DriftDecision {
            outcome: observation.outcome(),
            delta: observation.delta,
        });
        let mut migrated = None;
        if observation.fired {
            // Run the (comparatively expensive) TreeMatch re-placement
            // WITHOUT the state lock: `on_access` runs inside every task
            // thread's lock grant, and stalling all of them for the length
            // of a placement computation would pause the whole application.
            // Only the monitor thread calls `on_epoch`, so `placement` /
            // `baseline` cannot change underneath us while unlocked — and
            // the scratch buffers travel out of the state for the same
            // reason (taken, used unlocked, put back).
            let placement = state.placement.clone();
            let n_control = state.n_control;
            let replacer = state.replacer.clone();
            let mut scratch = std::mem::take(&mut state.scratch);
            drop(state);
            let decision = replacer.evaluate_with(&topo, &live, &placement, n_control, &mut scratch);
            state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state.scratch = scratch;
            if let Decision::Migrate { placement, migration_cost, .. } = decision {
                if orwl_obs::enabled() {
                    let next = placement.compute_mapping_or_zero();
                    let tasks_moved = mapping.iter().zip(&next).filter(|(a, b)| a != b).count();
                    orwl_obs::emit(orwl_obs::EventKind::Migration {
                        tasks_moved,
                        bytes: migration_cost,
                        cross_node: false,
                    });
                }
                state.placement = placement.clone();
                state.baseline = live.clone();
                state.detector.arm_cooldown();
                migrated = Some(placement);
            }
        }
        state.timeline.push(EpochRecord {
            epoch,
            records,
            delta: observation.delta,
            drift_fired: observation.fired,
            migrated: migrated.is_some(),
        });
        migrated
    }
}

/// `Arc`-aware wrapper used by [`adaptive_session_spec`]: implements the
/// controller by delegating to the inner engine and can hand out the sink
/// handle the runtime needs.
struct ArcEngine(Arc<AdaptiveEngine>);

impl AdaptiveController for ArcEngine {
    fn sink(&self) -> Arc<dyn AccessSink> {
        Arc::clone(&self.0) as Arc<dyn AccessSink>
    }

    fn on_run_start(&self, specs: &[TaskSpec], plan: &PlacementPlan, topo: &Topology) {
        self.0.on_run_start(specs, plan, topo);
    }

    fn on_epoch(&self, epoch: u64) -> Option<Placement> {
        self.0.on_epoch(epoch)
    }
}

/// Builds the [`AdaptiveSpec`](orwl_core::runtime::AdaptiveSpec) that plugs
/// `engine` into a `Session`: hand the result to
/// [`SessionBuilder::adaptive`](orwl_core::session::SessionBuilder::adaptive)
/// and the thread backend will monitor in wall-clock `epoch`s with the
/// engine as controller.
pub fn adaptive_session_spec(
    engine: Arc<AdaptiveEngine>,
    epoch: std::time::Duration,
) -> orwl_core::runtime::AdaptiveSpec {
    orwl_core::runtime::AdaptiveSpec::with_controller(Arc::new(ArcEngine(engine)), epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_core::placement::plan_placement;
    use orwl_core::task::{LocationLink, OrwlProgram, TaskSpec};
    use orwl_core::Location;
    use orwl_topo::synthetic;
    use orwl_treematch::policies::Policy;

    /// Builds a ring program whose declared links produce a ring matrix,
    /// returning the program plus the frontier locations.
    fn ring_program(n: usize, volume: f64) -> (OrwlProgram, Vec<std::sync::Arc<Location<u64>>>) {
        let locs: Vec<_> = (0..n).map(|i| Location::new(format!("ring-{i}"), 0u64)).collect();
        let mut program = OrwlProgram::new();
        for t in 0..n {
            let links = vec![
                LocationLink::write(locs[t].id(), volume),
                LocationLink::read(locs[(t + n - 1) % n].id(), volume),
            ];
            program.add_task(TaskSpec::new(format!("t{t}"), links), |_| {});
        }
        (program, locs)
    }

    #[test]
    fn engine_reconstructs_transfers_from_accesses() {
        let engine = AdaptiveEngine::new(AdaptConfig { decay: 0.0, ..AdaptConfig::default() });
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let (program, locs) = ring_program(4, 512.0);
        let plan = plan_placement(&program, &topo, Policy::TreeMatch, 0);
        engine.on_run_start(program.specs(), &plan, &topo);

        // Task 0 writes its frontier; task 1 reads it → transfer 0 → 1.
        engine.on_access(TaskId(0), locs[0].id(), AccessMode::Write);
        engine.on_access(TaskId(1), locs[0].id(), AccessMode::Read);
        // A read with no recorded writer is dropped.
        engine.on_access(TaskId(2), locs[1].id(), AccessMode::Read);
        // A foreign location is ignored entirely.
        let foreign = Location::new("foreign", 0u64);
        engine.on_access(TaskId(0), foreign.id(), AccessMode::Write);
        engine.on_access(TaskId(1), foreign.id(), AccessMode::Read);

        engine.on_epoch(1);
        let state = engine.state.lock().unwrap();
        assert_eq!(state.online.smoothed().get(0, 1), 512.0);
        assert_eq!(state.online.smoothed().total_volume(), 512.0);
    }

    #[test]
    fn stationary_traffic_never_migrates() {
        let engine = AdaptiveEngine::new(AdaptConfig { decay: 0.0, ..AdaptConfig::default() });
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let (program, locs) = ring_program(8, 256.0);
        let plan = plan_placement(&program, &topo, Policy::TreeMatch, 0);
        engine.on_run_start(program.specs(), &plan, &topo);

        for epoch in 1..=6 {
            // Replay exactly the declared ring pattern.
            for (t, loc) in locs.iter().enumerate() {
                engine.on_access(TaskId(t), loc.id(), AccessMode::Write);
            }
            for t in 0..locs.len() {
                engine.on_access(TaskId(t), locs[(t + 7) % 8].id(), AccessMode::Read);
            }
            assert_eq!(engine.on_epoch(epoch), None);
        }
        assert_eq!(engine.migrations(), 0);
        let timeline = engine.timeline();
        assert_eq!(timeline.len(), 6);
        assert!(timeline.iter().all(|r| !r.drift_fired));
    }

    #[test]
    fn inverted_ring_triggers_a_migration() {
        let engine = AdaptiveEngine::new(AdaptConfig {
            decay: 0.0,
            drift: DriftConfig { threshold: 0.10, patience: 1, cooldown: 1 },
            replacer: ReplacerConfig {
                model: crate::replace::MigrationCostModel { task_state_bytes: 1.0 },
                horizon_epochs: 10.0,
                min_relative_gain: 0.0,
            },
        });
        // A topology with real distance between sockets and a *pair*
        // pattern: tasks {0,1}, {2,3}, ... exchange heavily.  After the
        // phase change the pairing shifts by one: {1,2}, {3,4}, ...
        let topo = synthetic::cluster2016_subset(4).unwrap();
        let locs: Vec<_> = (0..16).map(|i| Location::new(format!("buf-{i}"), 0u64)).collect();
        let mut program = OrwlProgram::new();
        for t in 0..16usize {
            let partner = if t % 2 == 0 { t + 1 } else { t - 1 };
            let links = vec![
                LocationLink::write(locs[t].id(), 4096.0),
                LocationLink::read(locs[partner].id(), 4096.0),
            ];
            program.add_task(TaskSpec::new(format!("t{t}"), links), |_| {});
        }
        let plan = plan_placement(&program, &topo, Policy::TreeMatch, 0);
        engine.on_run_start(program.specs(), &plan, &topo);

        let mut migrated_at = None;
        for epoch in 1..=8 {
            // Shifted pairing: t exchanges with (t+1) mod 16 for even t+1...
            // i.e. partner' = (partner + 2) % 16, which crosses the old
            // pair boundaries.
            for (t, loc) in locs.iter().enumerate() {
                engine.on_access(TaskId(t), loc.id(), AccessMode::Write);
            }
            for t in 0..locs.len() {
                let partner = if t % 2 == 0 { (t + 3) % 16 } else { (t + 1) % 16 };
                engine.on_access(TaskId(t), locs[partner].id(), AccessMode::Read);
            }
            if engine.on_epoch(epoch).is_some() {
                migrated_at = Some(epoch);
                break;
            }
        }
        assert!(migrated_at.is_some(), "timeline: {:?}", engine.timeline());
        assert_eq!(engine.migrations(), 1);
    }
}
