//! # orwl-adapt — online communication monitoring and adaptive re-placement
//!
//! The paper's pipeline is *static*: build a communication matrix offline,
//! run TreeMatch (Algorithm 1), bind once, execute.  This crate closes that
//! measure → aggregate → map → bind loop **online** for workloads whose
//! communication patterns are unknown up front or drift over time:
//!
//! * [`online`] — [`OnlineCommMatrix`], an epoch-windowed accumulator with
//!   exponential decay fed by the transfer hooks in `orwl_core::monitor`
//!   (real runtime) and `orwl_numasim::exec::SimMonitor` (simulator);
//! * [`drift`] — [`DriftDetector`], comparing the live matrix against the
//!   matrix the current placement was computed from (normalised
//!   `mapping_cost_default` delta, with patience and cooldown hysteresis);
//! * [`replace`] — [`Replacer`], recomputing the TreeMatch placement and
//!   charging a migration-cost model (bytes moved × inter-leaf hop
//!   distance) against the predicted hop-byte savings;
//! * [`engine`] — [`AdaptiveEngine`], wiring the three into `orwl_core`'s
//!   event runtime: build the spec with [`adaptive_session_spec`] and hand
//!   it to `Session::builder().adaptive(..)` (threads re-bind
//!   cooperatively at lock acquisitions);
//! * [`backend`] — [`SimBackend`], the discrete-event simulator as a
//!   `Session` [`ExecutionBackend`](orwl_core::session::ExecutionBackend)
//!   with static/adaptive/oracle run modes.

pub mod backend;
pub mod drift;
pub mod engine;
pub mod online;
pub mod replace;
pub mod reshard;

pub use backend::SimBackend;
pub use drift::{DriftConfig, DriftDetector, DriftObservation};
pub use engine::{adaptive_session_spec, AdaptConfig, AdaptiveEngine, EpochRecord};
pub use online::OnlineCommMatrix;
pub use replace::{Decision, KeepReason, MigrationCostModel, Replacer, ReplacerConfig};
pub use reshard::{reshard_after_loss, ReshardPlan};
