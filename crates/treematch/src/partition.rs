//! Capacity-bounded k-way graph partitioning: the *node-assignment* stage
//! of two-level (cluster-scale) placement.
//!
//! Before TreeMatch maps threads inside a machine, cluster placement must
//! first decide **which machine each task runs on**, minimising the traffic
//! that crosses the fabric.  This module partitions the entities of a
//! communication matrix into `k` parts of bounded capacity so that the
//! weighted inter-part cut is small: a constructive greedy phase (seeded by
//! the heaviest communicators, like [`crate::grouping`]) followed by a
//! Kernighan–Lin-style refinement of single moves and pairwise swaps.
//!
//! Parts can be non-uniformly "far" from each other (racks!): the cut is
//! weighted by a caller-supplied part-distance matrix, so a partitioner
//! aware of the fabric prefers spilling across nearby parts.

use crate::algorithm::TreeMatchMapper;
use orwl_comm::matrix::CommMatrix;
use orwl_topo::topology::Topology;

/// Stage 2 of two-level placement, shared by `Policy::Hierarchical` and
/// the cluster backend's fabric-aware placement: run TreeMatch *inside*
/// each part of `assignment` on `part_topo` (the per-part subtree), and
/// reindex the part-local PUs into the global space — part `q`'s subtree
/// owns the contiguous global range `q * pus_per_part ..`.
pub fn treematch_within_parts(
    part_topo: &Topology,
    m: &CommMatrix,
    assignment: &[usize],
    n_parts: usize,
    pus_per_part: usize,
) -> Vec<Option<usize>> {
    let n = m.order();
    let mut compute = vec![None; n];
    for part in 0..n_parts {
        let members: Vec<usize> = (0..n).filter(|&t| assignment[t] == part).collect();
        if members.is_empty() {
            continue;
        }
        let sub = m.select(&members);
        let local = TreeMatchMapper::compute_only().compute_placement(part_topo, &sub);
        for (i, &t) in members.iter().enumerate() {
            compute[t] = local.compute[i].map(|pu| part * pus_per_part + pu);
        }
    }
    compute
}

/// Relative communication cost between parts: `cost(a, b)` scales every
/// byte cut between parts `a` and `b`.  Must be symmetric with a zero
/// diagonal.
#[derive(Debug, Clone)]
pub struct PartCosts {
    n_parts: usize,
    costs: Vec<f64>,
}

impl PartCosts {
    /// Uniform costs: every inter-part byte costs `1`, intra-part is free.
    pub fn uniform(n_parts: usize) -> Self {
        let mut costs = vec![1.0; n_parts * n_parts];
        for p in 0..n_parts {
            costs[p * n_parts + p] = 0.0;
        }
        PartCosts { n_parts, costs }
    }

    /// Builds costs from a function over part pairs; the diagonal is forced
    /// to zero and the matrix is symmetrised by averaging.
    pub fn from_fn(n_parts: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut costs = vec![0.0; n_parts * n_parts];
        for a in 0..n_parts {
            for b in 0..n_parts {
                costs[a * n_parts + b] = if a == b { 0.0 } else { (f(a, b) + f(b, a)) / 2.0 };
            }
        }
        PartCosts { n_parts, costs }
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// The relative cost between two parts.
    pub fn cost(&self, a: usize, b: usize) -> f64 {
        self.costs[a * self.n_parts + b]
    }
}

/// The weighted cut of an assignment: `Σ m[i][j] · cost(part_i, part_j)`.
/// With [`PartCosts::uniform`] this is exactly the inter-part cut bytes.
pub fn cut_cost(m: &CommMatrix, assignment: &[usize], costs: &PartCosts) -> f64 {
    assert!(assignment.len() >= m.order(), "assignment must cover every entity of the matrix");
    let mut cut = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            let v = m.get(i, j);
            if v != 0.0 {
                cut += v * costs.cost(assignment[i], assignment[j]);
            }
        }
    }
    cut
}

/// Bytes crossing part boundaries under an assignment (the unweighted cut).
pub fn cut_bytes(m: &CommMatrix, assignment: &[usize]) -> f64 {
    assert!(assignment.len() >= m.order(), "assignment must cover every entity of the matrix");
    let mut cut = 0.0;
    for i in 0..m.order() {
        for j in 0..m.order() {
            if assignment[i] != assignment[j] {
                cut += m.get(i, j);
            }
        }
    }
    cut
}

/// Why a partition request is infeasible (see [`partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// `capacity == 0` with a non-empty matrix: no entity can be placed
    /// anywhere.
    ZeroCapacity {
        /// Number of entities that needed a part.
        entities: usize,
    },
    /// `capacity × n_parts` cannot hold every entity.
    InsufficientCapacity {
        /// Number of parts available.
        parts: usize,
        /// Per-part capacity requested.
        capacity: usize,
        /// Number of entities to place.
        entities: usize,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::ZeroCapacity { entities } => {
                write!(f, "part capacity is 0 but {entities} entities need a part")
            }
            PartitionError::InsufficientCapacity { parts, capacity, entities } => {
                write!(f, "{parts} parts of capacity {capacity} cannot hold {entities} entities")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Gain a refinement action must exceed to be applied (matches the
/// grouping threshold so both local-search stages terminate).
const GAIN_THRESHOLD: f64 = 1e-12;

/// Relative slack of the incremental screens, mirroring
/// `orwl_treematch::grouping`: screened values are trusted to within
/// `SCREEN_EPS × (magnitudes involved)` of the naive ordered sums, which
/// holds with ≈ 10⁷ operations of headroom because volumes and part costs
/// are non-negative.
const SCREEN_EPS: f64 = 1e-9;

/// `vol[e · k + q] ≈ Σ s[e][other]` over the entities currently assigned
/// to part `q` (excluding `e` itself): the incremental attraction table
/// both greedy growth and KL refinement screen against.  Values differ
/// from the naive index-order sums only by floating-point rounding, which
/// the screens' slack absorbs; every accept/compare decision falls back to
/// the naive sums.
struct VolToPart {
    k: usize,
    vol: Vec<f64>,
}

impl VolToPart {
    fn new(p: usize, k: usize) -> Self {
        VolToPart { k, vol: vec![0.0; p * k] }
    }

    fn get(&self, e: usize, q: usize) -> f64 {
        self.vol[e * self.k + q]
    }

    /// Accounts entity `x` joining part `q` (row access on the symmetric
    /// matrix: `s[x][e]` is bitwise `s[e][x]`).
    fn on_assign(&mut self, s: &CommMatrix, x: usize, q: usize) {
        for e in 0..s.order() {
            if e != x {
                self.vol[e * self.k + q] += s.get(x, e);
            }
        }
    }

    /// Accounts entity `x` leaving part `from` for part `to`.
    fn on_move(&mut self, s: &CommMatrix, x: usize, from: usize, to: usize) {
        for e in 0..s.order() {
            if e != x {
                let v = s.get(x, e);
                self.vol[e * self.k + from] -= v;
                self.vol[e * self.k + to] += v;
            }
        }
    }

    /// Rebuilds the table from an assignment (entities with
    /// `assignment[e] == usize::MAX` are not yet placed and contribute
    /// nothing).
    fn rebuild(&mut self, s: &CommMatrix, assignment: &[usize]) {
        self.vol.fill(0.0);
        for e in 0..s.order() {
            for (other, &q) in assignment.iter().enumerate() {
                if other != e && q != usize::MAX {
                    self.vol[e * self.k + q] += s.get(e, other);
                }
            }
        }
    }
}

/// Partitions the `m.order()` entities into `costs.n_parts()` parts holding
/// at most `capacity` entities each, minimising the weighted cut
/// ([`cut_cost`]).  Deterministic; ties resolve towards lower part indices.
///
/// An infeasible request (zero capacity, or `capacity × n_parts <
/// entities`) is a typed [`PartitionError`], never a panic: callers that
/// derive the capacity from a machine (cluster placement) `expect` it,
/// callers forwarding user input (the lab sweep grid) surface it.
///
/// Like [`crate::grouping::group_processes`], the greedy growth and the KL
/// refinement maintain incremental attraction tables (`VolToPart`) used
/// as sound screens over the naive from-scratch sums, so the output is
/// **exactly** the pre-optimisation implementation's (pinned by proptests
/// against the retained `naive` reference below) while the dominant
/// per-candidate/per-action cost drops from `O(p)` to `O(1)`–`O(k)`.
pub fn partition(m: &CommMatrix, costs: &PartCosts, capacity: usize) -> Result<Vec<usize>, PartitionError> {
    let p = m.order();
    let k = costs.n_parts();
    if p == 0 {
        return Ok(Vec::new());
    }
    if capacity == 0 {
        return Err(PartitionError::ZeroCapacity { entities: p });
    }
    if k * capacity < p {
        return Err(PartitionError::InsufficientCapacity { parts: k, capacity, entities: p });
    }
    let s = m.symmetrized();

    // --- Greedy construction ------------------------------------------------
    // Aim for balanced parts (⌈p/k⌉) during construction so the refinement
    // starts from a feasible, load-balanced state; `capacity` only matters
    // when p does not divide evenly.
    let target = p.div_ceil(k).min(capacity);
    // Precomputed seed-sort keys (a `traffic_of` call in the comparator
    // would cost O(p) per comparison).
    let traffic: Vec<f64> = (0..p).map(|i| crate::grouping::symmetric_traffic_of(&s, i)).collect();
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| {
        traffic[b].partial_cmp(&traffic[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    let mut assignment = vec![usize::MAX; p];
    let mut load = vec![0usize; k];
    let mut vol = VolToPart::new(p, k);
    for &seed in &order {
        if assignment[seed] != usize::MAX {
            continue;
        }
        // Open the next empty part for this seed; when all parts are seeded,
        // fall through to the affinity rule below.
        let part = match (0..k).find(|&q| load[q] == 0) {
            Some(q) => q,
            None => best_part(&s, &assignment, &load, seed, costs, target, capacity),
        };
        assignment[seed] = part;
        load[part] += 1;
        vol.on_assign(&s, seed, part);
        // Grow the part around the seed up to the balanced target.  The
        // naive per-candidate connectivity rescan is screened by the
        // incremental table: only candidates that may beat the running
        // best are re-summed from scratch, and the comparisons always use
        // those naive sums.
        while load[part] < target {
            let mut best: Option<(usize, f64)> = None;
            for cand in 0..p {
                if assignment[cand] != usize::MAX {
                    continue;
                }
                let approx = vol.get(cand, part);
                // Volumes are non-negative, so an exactly-zero screened sum
                // means the naive sum is exactly zero too.
                let conn = if approx == 0.0 {
                    0.0
                } else {
                    match best {
                        Some((_, bc)) if approx + SCREEN_EPS * approx <= bc => continue,
                        // Row access: bitwise equal to the naive
                        // `s.get(e, cand)` column walk on the symmetric
                        // matrix.
                        _ => (0..p).filter(|&e| assignment[e] == part).map(|e| s.get(cand, e)).sum(),
                    }
                };
                if best.is_none_or(|(_, bc)| conn > bc) {
                    best = Some((cand, conn));
                }
            }
            match best {
                Some((cand, conn)) if conn > 0.0 || load[part] == 0 => {
                    assignment[cand] = part;
                    load[part] += 1;
                    vol.on_assign(&s, cand, part);
                }
                // No connected candidate left: stop growing, let the
                // remaining entities pick their own seeds / best parts.
                _ => break,
            }
        }
    }
    // Anything still unassigned (disconnected entities) goes to the
    // cheapest part with room.
    for e in 0..p {
        if assignment[e] == usize::MAX {
            let part = best_part(&s, &assignment, &load, e, costs, target, capacity);
            assignment[e] = part;
            load[part] += 1;
        }
    }

    refine(&s, &mut assignment, &mut load, costs, capacity, &mut vol);
    Ok(assignment)
}

/// The part the entity is most attracted to among those with room: highest
/// connectivity, then lowest load, then lowest index.
fn best_part(
    s: &CommMatrix,
    assignment: &[usize],
    load: &[usize],
    entity: usize,
    costs: &PartCosts,
    target: usize,
    capacity: usize,
) -> usize {
    let k = load.len();
    // Prefer parts under the balanced target; allow up to capacity when
    // every part has reached it.
    let limit = if load.iter().all(|&l| l >= target) { capacity } else { target };
    let mut best: Option<(usize, f64)> = None;
    for q in 0..k {
        if load[q] >= limit {
            continue;
        }
        // Attraction = volume kept local minus fabric-weighted volume to the
        // entities already placed elsewhere.
        let mut score = 0.0;
        for (e, &part) in assignment.iter().enumerate() {
            if part == usize::MAX {
                continue;
            }
            let v = s.get(e, entity);
            if v != 0.0 {
                score -= v * costs.cost(part, q);
            }
        }
        let better = match best {
            None => true,
            Some((bq, bs)) => score > bs || (score == bs && (load[q], q) < (load[bq], bq)),
        };
        if better {
            best = Some((q, score));
        }
    }
    best.map(|(q, _)| q).expect("capacity assertion guarantees a part with room")
}

/// Kernighan–Lin-style local refinement: greedily apply the single move or
/// pairwise swap with the largest cut improvement until none remains (or a
/// safety bound on passes is hit).
///
/// The naive formulation recomputed `cost_in` — an `O(p)` scan — for every
/// candidate action of every pass, an `O(p³)` bill per applied action.
/// Here an *approximate* entity × part cost table (derived from the
/// incremental `VolToPart` attractions, `O(k)` per entry) screens the
/// candidate actions in `O(1)`; only actions whose screened gain could
/// beat the running best are re-evaluated with the naive `cost_in`, and
/// the best-action choice and the accept threshold always use those naive
/// values — so the refined assignment is exactly the naive one.
fn refine(
    s: &CommMatrix,
    assignment: &mut [usize],
    load: &mut [usize],
    costs: &PartCosts,
    capacity: usize,
    vol: &mut VolToPart,
) {
    let p = s.order();
    let k = load.len();
    // External cost of entity `e` if it were in part `q`.
    let cost_in = |assignment: &[usize], e: usize, q: usize| -> f64 {
        let mut c = 0.0;
        for (other, &part) in assignment.iter().enumerate().take(p) {
            if other == e {
                continue;
            }
            let v = s.get(e, other);
            if v != 0.0 {
                c += v * costs.cost(q, part);
            }
        }
        c
    };
    // The greedy phase's incremental table misses the leftover placements
    // (and carries their rounding history); re-anchor it once.
    vol.rebuild(s, assignment);
    // Additive slack term covering cancellation residue left in `vol` by
    // `on_move` deltas (current magnitudes alone underestimate the
    // accumulated rounding after near-total cancellation).
    let s_max = s.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let c_max = (0..k)
        .flat_map(|a| (0..k).map(move |b| (a, b)))
        .fold(0.0f64, |m, (a, b)| m.max(costs.cost(a, b).abs()));
    let abs_slack = SCREEN_EPS * s_max * c_max * 2.0;
    // ac[e · k + q] ≈ cost_in(e, q), refreshed from `vol` every pass;
    // volumes and costs are non-negative, so each entry doubles as the
    // magnitude bound its screen's slack is scaled by.
    let mut ac = vec![0.0f64; p * k];

    for _pass in 0..2 * p.max(4) {
        for e in 0..p {
            for q in 0..k {
                let mut c = 0.0;
                for qq in 0..k {
                    c += costs.cost(q, qq) * vol.get(e, qq);
                }
                ac[e * k + q] = c;
            }
        }
        let mut best_gain = GAIN_THRESHOLD;
        let mut best_action: Option<(usize, Option<usize>, usize)> = None; // (a, Some(b)=swap / None=move, dest)
        for a in 0..p {
            let pa = assignment[a];
            // The naive `here` is computed lazily, at most once per `a`.
            let mut here_exact: Option<f64> = None;
            let approx_here = ac[a * k + pa];
            // Single moves to any part with room.
            for (q, &part_load) in load.iter().enumerate().take(k) {
                if q == pa || part_load >= capacity {
                    continue;
                }
                let approx_there = ac[a * k + q];
                let slack = SCREEN_EPS * (approx_here.abs() + approx_there.abs()) + abs_slack;
                if approx_here - approx_there + slack <= best_gain {
                    continue; // certain reject at naive precision
                }
                let here = *here_exact.get_or_insert_with(|| cost_in(assignment, a, pa));
                let gain = here - cost_in(assignment, a, q);
                if gain > best_gain {
                    best_gain = gain;
                    best_action = Some((a, None, q));
                }
            }
            // Pairwise swaps.
            for b in (a + 1)..p {
                let pb = assignment[b];
                if pb == pa {
                    continue;
                }
                let cross = 2.0 * s.get(a, b) * costs.cost(pa, pb);
                let approx_before = approx_here + ac[b * k + pb];
                let approx_after = ac[a * k + pb] + ac[b * k + pa] + cross;
                let slack = SCREEN_EPS * (approx_before.abs() + approx_after.abs()) + abs_slack;
                if approx_before - approx_after + slack <= best_gain {
                    continue;
                }
                let here = *here_exact.get_or_insert_with(|| cost_in(assignment, a, pa));
                let before = here + cost_in(assignment, b, pb);
                // `cost_in` is evaluated against the *unswapped* assignment,
                // where the a↔b term vanishes (each sees the other still in
                // the destination part); after the swap the pair straddles
                // pa↔pb again, so add the term back for both directions.
                let after = cost_in(assignment, a, pb) + cost_in(assignment, b, pa) + cross;
                let gain = before - after;
                if gain > best_gain {
                    best_gain = gain;
                    best_action = Some((a, Some(b), pb));
                }
            }
        }
        match best_action {
            Some((a, None, q)) => {
                let pa = assignment[a];
                load[pa] -= 1;
                assignment[a] = q;
                load[q] += 1;
                vol.on_move(s, a, pa, q);
            }
            Some((a, Some(b), _)) => {
                let (pa, pb) = (assignment[a], assignment[b]);
                assignment.swap(a, b);
                vol.on_move(s, a, pa, pb);
                vol.on_move(s, b, pb, pa);
            }
            None => break,
        }
    }
}

/// The pre-optimisation partitioner, retained verbatim as the reference
/// the screened incremental one is pinned against (proptests below).
#[cfg(test)]
pub(crate) mod naive {
    use super::*;

    pub fn partition(
        m: &CommMatrix,
        costs: &PartCosts,
        capacity: usize,
    ) -> Result<Vec<usize>, PartitionError> {
        let p = m.order();
        let k = costs.n_parts();
        if p == 0 {
            return Ok(Vec::new());
        }
        if capacity == 0 {
            return Err(PartitionError::ZeroCapacity { entities: p });
        }
        if k * capacity < p {
            return Err(PartitionError::InsufficientCapacity { parts: k, capacity, entities: p });
        }
        let s = m.symmetrized();

        let target = p.div_ceil(k).min(capacity);
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            s.traffic_of(b).partial_cmp(&s.traffic_of(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });

        let mut assignment = vec![usize::MAX; p];
        let mut load = vec![0usize; k];
        for &seed in &order {
            if assignment[seed] != usize::MAX {
                continue;
            }
            let part = match (0..k).find(|&q| load[q] == 0) {
                Some(q) => q,
                None => best_part(&s, &assignment, &load, seed, costs, target, capacity),
            };
            assignment[seed] = part;
            load[part] += 1;
            while load[part] < target {
                let mut best: Option<(usize, f64)> = None;
                for cand in 0..p {
                    if assignment[cand] != usize::MAX {
                        continue;
                    }
                    let conn: f64 = (0..p).filter(|&e| assignment[e] == part).map(|e| s.get(e, cand)).sum();
                    if best.is_none_or(|(_, bc)| conn > bc) {
                        best = Some((cand, conn));
                    }
                }
                match best {
                    Some((cand, conn)) if conn > 0.0 || load[part] == 0 => {
                        assignment[cand] = part;
                        load[part] += 1;
                    }
                    _ => break,
                }
            }
        }
        for e in 0..p {
            if assignment[e] == usize::MAX {
                let part = best_part(&s, &assignment, &load, e, costs, target, capacity);
                assignment[e] = part;
                load[part] += 1;
            }
        }

        refine(&s, &mut assignment, &mut load, costs, capacity);
        Ok(assignment)
    }

    fn refine(
        s: &CommMatrix,
        assignment: &mut [usize],
        load: &mut [usize],
        costs: &PartCosts,
        capacity: usize,
    ) {
        let p = s.order();
        let k = load.len();
        let cost_in = |assignment: &[usize], e: usize, q: usize| -> f64 {
            let mut c = 0.0;
            for (other, &part) in assignment.iter().enumerate().take(p) {
                if other == e {
                    continue;
                }
                let v = s.get(e, other);
                if v != 0.0 {
                    c += v * costs.cost(q, part);
                }
            }
            c
        };

        for _pass in 0..2 * p.max(4) {
            let mut best_gain = GAIN_THRESHOLD;
            let mut best_action: Option<(usize, Option<usize>, usize)> = None;
            for a in 0..p {
                let pa = assignment[a];
                let here = cost_in(assignment, a, pa);
                for (q, &part_load) in load.iter().enumerate().take(k) {
                    if q == pa || part_load >= capacity {
                        continue;
                    }
                    let gain = here - cost_in(assignment, a, q);
                    if gain > best_gain {
                        best_gain = gain;
                        best_action = Some((a, None, q));
                    }
                }
                for b in (a + 1)..p {
                    let pb = assignment[b];
                    if pb == pa {
                        continue;
                    }
                    let before = here + cost_in(assignment, b, pb);
                    let after = cost_in(assignment, a, pb)
                        + cost_in(assignment, b, pa)
                        + 2.0 * s.get(a, b) * costs.cost(pa, pb);
                    let gain = before - after;
                    if gain > best_gain {
                        best_gain = gain;
                        best_action = Some((a, Some(b), pb));
                    }
                }
            }
            match best_action {
                Some((a, None, q)) => {
                    load[assignment[a]] -= 1;
                    assignment[a] = q;
                    load[q] += 1;
                }
                Some((a, Some(b), _)) => {
                    assignment.swap(a, b);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;
    use proptest::prelude::*;

    #[test]
    fn uniform_costs_have_zero_diagonal() {
        let c = PartCosts::uniform(3);
        assert_eq!(c.n_parts(), 3);
        for a in 0..3 {
            assert_eq!(c.cost(a, a), 0.0);
            for b in 0..3 {
                if a != b {
                    assert_eq!(c.cost(a, b), 1.0);
                }
            }
        }
    }

    #[test]
    fn from_fn_symmetrises_and_zeroes_diagonal() {
        let c = PartCosts::from_fn(3, |a, b| (a + 2 * b) as f64);
        assert_eq!(c.cost(1, 1), 0.0);
        assert_eq!(c.cost(0, 1), c.cost(1, 0));
        assert_eq!(c.cost(0, 2), 3.0); // ((0+4) + (2+0)) / 2
    }

    #[test]
    fn clustered_pattern_is_cut_perfectly() {
        // 4 groups of 4 with heavy intra-group traffic: each group must land
        // in its own part, cutting only the light inter-group ring.
        let m = patterns::clustered(4, 4, 1000.0, 1.0);
        let assignment = partition(&m, &PartCosts::uniform(4), 4).unwrap();
        for g in 0..4 {
            let parts: std::collections::HashSet<usize> = (0..4).map(|i| assignment[g * 4 + i]).collect();
            assert_eq!(parts.len(), 1, "group {g} split across parts {parts:?}");
        }
        // Only the inter-group ring volume is cut.
        let cut = cut_bytes(&m, &assignment);
        let intra: f64 = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .filter(|&(i, j)| i / 4 == j / 4)
            .map(|(i, j)| m.get(i, j))
            .sum();
        assert!((cut - (m.total_volume() - intra)).abs() < 1e-9);
    }

    #[test]
    fn partition_respects_capacity() {
        let m = patterns::all_to_all(10, 1.0);
        let assignment = partition(&m, &PartCosts::uniform(4), 3).unwrap();
        let mut load = [0usize; 4];
        for &q in &assignment {
            assert!(q < 4);
            load[q] += 1;
        }
        assert!(load.iter().all(|&l| l <= 3), "capacity violated: {load:?}");
        assert_eq!(load.iter().sum::<usize>(), 10);
    }

    #[test]
    fn infeasible_capacity_is_a_typed_error_not_a_panic() {
        let m = patterns::chain(10, 1.0);
        assert_eq!(
            partition(&m, &PartCosts::uniform(2), 4).unwrap_err(),
            PartitionError::InsufficientCapacity { parts: 2, capacity: 4, entities: 10 }
        );
        let zero = partition(&m, &PartCosts::uniform(2), 0).unwrap_err();
        assert_eq!(zero, PartitionError::ZeroCapacity { entities: 10 });
        // The errors carry a human-readable story.
        assert!(zero.to_string().contains("capacity is 0"));
        assert!(partition(&m, &PartCosts::uniform(2), 4)
            .unwrap_err()
            .to_string()
            .contains("cannot hold 10 entities"));
    }

    #[test]
    fn capacities_exactly_met_fill_every_slot() {
        // 12 entities into 3 parts of exactly 4: a perfectly tight fit must
        // succeed with every part filled to the brim.
        let m = patterns::all_to_all(12, 1.0);
        let assignment = partition(&m, &PartCosts::uniform(3), 4).unwrap();
        let mut load = [0usize; 3];
        for &q in &assignment {
            load[q] += 1;
        }
        assert_eq!(load, [4, 4, 4]);
        // Same at capacity 1 with n parts: a forced perfect matching.
        let tiny = patterns::ring(3, 5.0);
        let forced = partition(&tiny, &PartCosts::uniform(3), 1).unwrap();
        let mut seen: Vec<usize> = forced.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn single_part_takes_everything_and_cuts_nothing() {
        let m = patterns::random_symmetric(6, 0.8, 50.0, 9);
        let assignment = partition(&m, &PartCosts::uniform(1), 6).unwrap();
        assert!(assignment.iter().all(|&q| q == 0));
        assert_eq!(cut_bytes(&m, &assignment), 0.0);
        // A single part below the entity count is infeasible, not a hang.
        assert_eq!(
            partition(&m, &PartCosts::uniform(1), 5).unwrap_err(),
            PartitionError::InsufficientCapacity { parts: 1, capacity: 5, entities: 6 }
        );
    }

    #[test]
    fn chain_is_split_into_contiguous_runs() {
        // A heavy chain of 8 into 2 parts of 4: the optimal cut severs one
        // edge, i.e. the parts are {0..3} and {4..7}.
        let m = patterns::chain(8, 100.0);
        let assignment = partition(&m, &PartCosts::uniform(2), 4).unwrap();
        // The optimal cut severs exactly one chain link (both directions).
        let one_link = m.get(3, 4) + m.get(4, 3);
        assert_eq!(cut_bytes(&m, &assignment), one_link, "assignment {assignment:?}");
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[4], assignment[7]);
        assert_ne!(assignment[0], assignment[7]);
    }

    #[test]
    fn weighted_costs_pull_spill_towards_cheap_parts() {
        // 3 groups of 2 on 3 parts of capacity 2; parts 0-1 are "same rack"
        // (cost 1), part 2 is far (cost 10 from both).  The pattern is a
        // heavy pair per group plus a medium 0↔2 bridge between the first
        // two groups and a light 0↔4 link to the third: the bridge endpoints
        // should stay on the near parts.
        let m = CommMatrix::from_edges(
            6,
            &[(0, 1, 1000.0), (2, 3, 1000.0), (4, 5, 1000.0), (0, 2, 50.0), (0, 4, 1.0)],
        );
        let costs = PartCosts::from_fn(3, |a, b| if a.max(b) == 2 { 10.0 } else { 1.0 });
        let assignment = partition(&m, &costs, 2).unwrap();
        // Pairs stay together.
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[2], assignment[3]);
        assert_eq!(assignment[4], assignment[5]);
        // The bridged groups occupy the two near parts; the light group is
        // pushed to the far part.
        let far = assignment[4];
        assert_eq!(costs.cost(assignment[0], far).max(costs.cost(assignment[2], far)), 10.0);
        assert_eq!(costs.cost(assignment[0], assignment[2]), 1.0);
    }

    #[test]
    fn cut_cost_matches_cut_bytes_under_uniform_costs() {
        let m = patterns::stencil_2d(&patterns::StencilSpec {
            rows: 4,
            cols: 4,
            edge_volume: 64.0,
            corner_volume: 8.0,
        });
        let assignment = partition(&m, &PartCosts::uniform(4), 4).unwrap();
        let uniform = PartCosts::uniform(4);
        assert!((cut_cost(&m, &assignment, &uniform) - cut_bytes(&m, &assignment)).abs() < 1e-9);
        // The stencil partition keeps at least half of the traffic local.
        assert!(cut_bytes(&m, &assignment) < 0.5 * m.total_volume());
    }

    #[test]
    fn empty_matrix_yields_empty_assignment() {
        // Even with zero capacity: there is nothing to place, so the empty
        // assignment is the (vacuously feasible) answer.
        assert!(partition(&CommMatrix::zeros(0), &PartCosts::uniform(2), 1).unwrap().is_empty());
        assert!(partition(&CommMatrix::zeros(0), &PartCosts::uniform(2), 0).unwrap().is_empty());
    }

    #[test]
    fn refinement_is_deterministic() {
        let m = patterns::random_symmetric(12, 0.5, 100.0, 42);
        let a = partition(&m, &PartCosts::uniform(3), 4).unwrap();
        let b = partition(&m, &PartCosts::uniform(3), 4).unwrap();
        assert_eq!(a, b);
    }

    /// Regression pin: exact outputs of the pre-optimisation partitioner on
    /// fixed seeded matrices.
    #[test]
    fn partition_outputs_are_pinned() {
        let pins: [(u64, Vec<usize>); 2] = [
            (3, vec![2, 1, 0, 3, 2, 0, 3, 0, 1, 1, 1, 1, 0, 2, 3, 0, 3, 2, 1, 0, 3, 2, 3, 2]),
            (11, vec![3, 1, 1, 3, 3, 3, 0, 0, 0, 2, 1, 3, 1, 3, 0, 2, 2, 0, 2, 0, 1, 1, 2, 2]),
        ];
        for (seed, expected) in pins {
            let m = patterns::random_symmetric(24, 0.6, 100.0, seed);
            assert_eq!(partition(&m, &PartCosts::uniform(4), 6).unwrap(), expected, "seed {seed}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The screened incremental partitioner is output-identical to the
        // retained naive reference on random float-valued matrices, across
        // part counts, capacities (incl. infeasible ones) and weighted
        // part-distance matrices.
        #[test]
        fn incremental_matches_naive_reference(
            n in 1usize..22,
            k in 1usize..6,
            extra_cap in 0usize..4,
            seed in 0u64..400,
        ) {
            let m = patterns::random_symmetric(n, 0.6, 987.654321, seed);
            let capacity = n.div_ceil(k) + extra_cap;
            let costs = PartCosts::from_fn(k, |a, b| 1.0 + ((a * 7 + b * 3) % 5) as f64 / 3.0);
            prop_assert_eq!(
                partition(&m, &costs, capacity),
                naive::partition(&m, &costs, capacity)
            );
            let uniform = PartCosts::uniform(k);
            prop_assert_eq!(
                partition(&m, &uniform, capacity),
                naive::partition(&m, &uniform, capacity)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // Same identity on the structured shapes the cluster sweep runs
        // (stencils with inexact volumes, power-law graphs).
        #[test]
        fn incremental_matches_naive_on_structured_patterns(side in 2usize..6, k in 2usize..5, seed in 0u64..100) {
            let stencil = patterns::stencil_2d(&patterns::StencilSpec {
                rows: side,
                cols: side + 1,
                edge_volume: 4096.0 * 0.2,
                corner_volume: 64.0 * 0.2,
            });
            let n = stencil.order();
            let costs = PartCosts::uniform(k);
            prop_assert_eq!(
                partition(&stencil, &costs, n.div_ceil(k)),
                naive::partition(&stencil, &costs, n.div_ceil(k))
            );
            let pl = patterns::power_law(n, 3, 1.0e6, seed);
            prop_assert_eq!(
                partition(&pl, &costs, n.div_ceil(k)),
                naive::partition(&pl, &costs, n.div_ceil(k))
            );
        }
    }
}
