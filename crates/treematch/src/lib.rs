//! # orwl-treematch — topology-aware thread placement (Algorithm 1)
//!
//! This crate implements the placement algorithm at the heart of the paper
//! *"Optimizing Locality by Topology-aware Placement for a Task Based
//! Programming Model"* (CLUSTER 2016): a TreeMatch-derived mapping of
//! communicating threads onto the leaves of the hardware topology tree,
//! extended to handle
//!
//! * **control threads** — the ORWL runtime's event-management threads are
//!   reserved a hyperthread per core, placed on spare cores, or left to the
//!   OS (module [`control`]);
//! * **oversubscription** — when there are more threads than processing
//!   units, a virtual level is appended to the tree (module [`oversub`]);
//! * **two-level cluster placement** — a capacity-bounded k-way
//!   partitioning stage (module [`mod@partition`]) shards tasks across the
//!   depth-1 subtrees (cluster nodes) before TreeMatch maps each shard,
//!   surfaced as [`policies::Policy::Hierarchical`].
//!
//! The individual steps of Algorithm 1 are exposed as separate, testable
//! functions: [`grouping::group_processes`] (`GroupProcesses`),
//! [`orwl_comm::aggregate::aggregate`] (`AggregateComMatrix`) and
//! [`algorithm::tree_match_assign`] (the grouping loop plus `MapGroups`).
//! Baseline policies used in the evaluation (packed, scatter, random,
//! no-binding) live in [`policies`].
//!
//! # Example
//!
//! ```
//! use orwl_treematch::prelude::*;
//! use orwl_comm::patterns;
//! use orwl_topo::synthetic;
//!
//! // Four groups of eight threads with strong intra-group traffic...
//! let matrix = patterns::clustered(4, 8, 1000.0, 1.0);
//! // ...placed on four sockets of eight cores.
//! let topo = synthetic::cluster2016_subset(4).unwrap();
//!
//! let placement = TreeMatchMapper::compute_only().compute_placement(&topo, &matrix);
//! assert!(placement.is_injective());
//! assert_eq!(placement.numa_nodes_used(&topo), 4);
//! ```

pub mod algorithm;
pub mod control;
pub mod grouping;
pub mod mapping;
pub mod oversub;
pub mod partition;
pub mod policies;

pub use algorithm::{
    tree_match_assign, tree_match_assign_with, PlacementScratch, TreeMatchConfig, TreeMatchMapper,
};
pub use control::{ControlPlacementMode, ControlThreadSpec};
pub use mapping::Placement;
pub use oversub::OversubPlan;
pub use partition::{cut_bytes, cut_cost, partition, PartCosts, PartitionError};
pub use policies::{compute_placement, Policy};

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::algorithm::{TreeMatchConfig, TreeMatchMapper};
    pub use crate::control::ControlThreadSpec;
    pub use crate::mapping::Placement;
    pub use crate::policies::{compute_placement, Policy};
}
