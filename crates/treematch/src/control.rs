//! The `extend_to_manage_control_threads` step of Algorithm 1.
//!
//! Besides the computation threads, the ORWL runtime runs *control threads*
//! (event management, request forwarding).  The paper's placement add-on
//! accounts for them in three ways, depending on the hardware:
//!
//! 1. **Hyperthread reserve** — when the machine has SMT, one hardware
//!    thread per physical core is reserved for control and the other for
//!    computation;
//! 2. **Spare cores** — when there are more cores than computation threads,
//!    the communication matrix is extended with one column/row per control
//!    thread so they are mapped onto the spare cores near the computation
//!    threads they serve;
//! 3. **Unmapped** — otherwise control threads are left to the OS scheduler.

use orwl_comm::matrix::CommMatrix;
use orwl_topo::topology::Topology;

/// Description of the runtime's control threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlThreadSpec {
    /// Number of control threads the runtime will start.
    pub count: usize,
    /// Affinity weight between a control thread and each compute thread it
    /// serves, expressed as a fraction of that compute thread's own traffic.
    /// The default (0.1) makes control threads gravitate towards their
    /// compute threads without displacing compute-compute affinity.
    pub affinity_fraction: f64,
}

impl Default for ControlThreadSpec {
    fn default() -> Self {
        ControlThreadSpec { count: 1, affinity_fraction: 0.1 }
    }
}

impl ControlThreadSpec {
    /// A spec with `count` control threads and the default affinity.
    pub fn with_count(count: usize) -> Self {
        ControlThreadSpec { count, ..Default::default() }
    }

    /// Compute threads served by control thread `k` when there are
    /// `n_compute` compute threads: a round-robin assignment, matching how
    /// the ORWL runtime shards its event loops.
    pub fn served_by(&self, k: usize, n_compute: usize) -> Vec<usize> {
        if self.count == 0 {
            return Vec::new();
        }
        (0..n_compute).filter(|t| t % self.count == k).collect()
    }
}

/// How the control threads will be handled by the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlPlacementMode {
    /// One hyperthread per core is reserved for control threads.
    HyperthreadReserve,
    /// Control threads are added to the communication matrix and mapped onto
    /// spare cores.
    SpareCores,
    /// Control threads are left to the OS scheduler.
    Unmapped,
}

/// Chooses the control-thread handling exactly as described in §II of the
/// paper: prefer reserving a hyperthread per core, then spare cores, then
/// give up and let the OS schedule them.
pub fn decide_control_mode(topo: &Topology, n_compute: usize, n_control: usize) -> ControlPlacementMode {
    if n_control == 0 {
        return ControlPlacementMode::Unmapped;
    }
    if topo.has_hyperthreading() && n_compute <= topo.nb_cores() {
        return ControlPlacementMode::HyperthreadReserve;
    }
    let spare = topo.nb_pus().saturating_sub(n_compute);
    if spare >= n_control {
        return ControlPlacementMode::SpareCores;
    }
    ControlPlacementMode::Unmapped
}

/// Extends the compute-thread communication matrix with `spec.count` extra
/// rows/columns representing the control threads (the paper's step 1).
///
/// Control thread `k` (matrix index `n_compute + k`) gets an affinity edge
/// with every compute thread it serves, weighted by `affinity_fraction` of
/// that thread's total traffic, in both directions.  Control threads do not
/// talk to each other.
pub fn extend_for_control(m: &CommMatrix, spec: &ControlThreadSpec) -> CommMatrix {
    let n = m.order();
    if spec.count == 0 {
        return m.clone();
    }
    let mut ext = m.extended(n + spec.count);
    for k in 0..spec.count {
        let ctl = n + k;
        for t in spec.served_by(k, n) {
            let w = spec.affinity_fraction * m.traffic_of(t) / 2.0;
            ext.add(t, ctl, w);
            ext.add(ctl, t, w);
        }
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;
    use orwl_topo::synthetic;

    #[test]
    fn served_by_round_robin() {
        let spec = ControlThreadSpec::with_count(2);
        assert_eq!(spec.served_by(0, 5), vec![0, 2, 4]);
        assert_eq!(spec.served_by(1, 5), vec![1, 3]);
        assert_eq!(ControlThreadSpec::with_count(0).served_by(0, 4), Vec::<usize>::new());
    }

    #[test]
    fn mode_prefers_hyperthread_reserve() {
        let smt = synthetic::dual_socket_smt(); // 32 cores, 64 PUs
        assert_eq!(decide_control_mode(&smt, 32, 4), ControlPlacementMode::HyperthreadReserve);
        assert_eq!(decide_control_mode(&smt, 16, 1), ControlPlacementMode::HyperthreadReserve);
    }

    #[test]
    fn mode_falls_back_to_spare_cores_without_smt() {
        let smp = synthetic::cluster2016_subset(2).unwrap(); // 16 cores, no SMT
        assert_eq!(decide_control_mode(&smp, 8, 4), ControlPlacementMode::SpareCores);
        // Exactly enough spare cores.
        assert_eq!(decide_control_mode(&smp, 12, 4), ControlPlacementMode::SpareCores);
    }

    #[test]
    fn mode_unmapped_when_no_room() {
        let smp = synthetic::cluster2016_subset(1).unwrap(); // 8 cores
        assert_eq!(decide_control_mode(&smp, 8, 1), ControlPlacementMode::Unmapped);
        assert_eq!(decide_control_mode(&smp, 7, 2), ControlPlacementMode::Unmapped);
        // No control threads at all → nothing to place.
        assert_eq!(decide_control_mode(&smp, 4, 0), ControlPlacementMode::Unmapped);
    }

    #[test]
    fn smt_machine_with_too_many_compute_threads_uses_spare_pus() {
        let smt = synthetic::dual_socket_smt(); // 32 cores, 64 PUs
                                                // More compute threads than cores: cannot reserve a hyperthread per
                                                // core, but there are still spare PUs.
        assert_eq!(decide_control_mode(&smt, 40, 8), ControlPlacementMode::SpareCores);
        assert_eq!(decide_control_mode(&smt, 63, 2), ControlPlacementMode::Unmapped);
    }

    #[test]
    fn extend_adds_weighted_edges() {
        let m = patterns::chain(4, 10.0);
        let spec = ControlThreadSpec { count: 2, affinity_fraction: 0.5 };
        let ext = extend_for_control(&m, &spec);
        assert_eq!(ext.order(), 6);
        // Original entries preserved.
        assert_eq!(ext.get(0, 1), 10.0);
        // Control thread 0 serves compute 0 and 2.
        assert!(ext.get(0, 4) > 0.0);
        assert!(ext.get(2, 4) > 0.0);
        assert_eq!(ext.get(1, 4), 0.0);
        // Control thread 1 serves compute 1 and 3.
        assert!(ext.get(1, 5) > 0.0);
        // Control threads do not talk to each other.
        assert_eq!(ext.get(4, 5), 0.0);
        // Edge weight is affinity_fraction × traffic/2: thread 0 has total
        // traffic 20 (10 out + 10 in), so the edge is 0.5 × 10 = 5.
        assert_eq!(ext.get(0, 4), 5.0);
        // Extension is symmetric for the new edges.
        assert_eq!(ext.get(4, 0), ext.get(0, 4));
    }

    #[test]
    fn extend_with_zero_control_threads_is_identity() {
        let m = patterns::ring(4, 3.0);
        let ext = extend_for_control(&m, &ControlThreadSpec { count: 0, affinity_fraction: 0.1 });
        assert_eq!(ext, m);
    }

    #[test]
    fn extended_matrix_groups_control_near_served_threads() {
        // Sanity: when grouping the extended matrix, a control thread should
        // land with the compute threads it serves rather than with strangers.
        let m = patterns::clustered(2, 3, 100.0, 1.0); // 6 compute threads
        let spec = ControlThreadSpec { count: 2, affinity_fraction: 0.3 };
        let ext = extend_for_control(&m, &spec);
        let groups = crate::grouping::group_processes(&ext, 4);
        // Control thread 6 serves 0,2,4; control thread 7 serves 1,3,5.
        // With clusters {0,1,2} and {3,4,5}, each control thread has served
        // members in both clusters, so we only check that each control
        // thread shares a group with at least one thread it serves.
        for (ctl, served) in [(6usize, vec![0usize, 2, 4]), (7, vec![1, 3, 5])] {
            let g = groups.iter().find(|g| g.contains(&ctl)).unwrap();
            assert!(
                served.iter().any(|t| g.contains(t)),
                "control {ctl} grouped away from every served thread: {groups:?}"
            );
        }
    }
}
