//! The `GroupProcesses` step of Algorithm 1.
//!
//! Given a communication matrix of order `p` and the arity `a` of the
//! current topology level, partition the `p` entities into `⌈p/a⌉` groups of
//! at most `a` members so that as much communication volume as possible
//! stays *inside* groups.  Entities grouped together will later be assigned
//! to the children of a single topology node (the same cache, the same NUMA
//! node, …), so intra-group volume is the volume the placement keeps local.
//!
//! Finding the optimal partition is NP-hard (it generalises graph
//! partitioning); like TreeMatch we use a constructive greedy phase followed
//! by a local-refinement phase (pairwise swaps à la Kernighan–Lin), which is
//! exact on the small instances the unit tests check and close to optimal on
//! stencil-like matrices.

use orwl_comm::aggregate::Groups;
use orwl_comm::matrix::CommMatrix;

/// Partitions the `m.order()` entities into groups of at most `arity`
/// members, maximising intra-group communication volume.
///
/// The returned groups are ordered by their smallest member, and members are
/// sorted within each group, so the result is deterministic.
///
/// # Panics
/// Panics when `arity == 0`.
pub fn group_processes(m: &CommMatrix, arity: usize) -> Groups {
    assert!(arity > 0, "arity must be at least 1");
    let p = m.order();
    if p == 0 {
        return Vec::new();
    }
    // Work on the symmetrised matrix: grouping only cares about the total
    // volume between two entities, not its direction.
    let s = m.symmetrized();
    let n_groups = p.div_ceil(arity);

    let mut groups = greedy_grouping(&s, arity, n_groups);
    refine_by_swaps(&s, &mut groups);

    // Canonical order: sort members, then groups by first member.
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g.first().copied().unwrap_or(usize::MAX));
    groups
}

/// Greedy construction: seed each group with the heaviest-traffic unassigned
/// entity, then repeatedly add the unassigned entity with the strongest
/// connection to the group.
fn greedy_grouping(s: &CommMatrix, arity: usize, n_groups: usize) -> Groups {
    let p = s.order();
    let mut assigned = vec![false; p];
    let mut order: Vec<usize> = (0..p).collect();
    // Heaviest communicators first so they get to pick their partners.
    order.sort_by(|&a, &b| {
        s.traffic_of(b).partial_cmp(&s.traffic_of(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    let mut groups: Groups = Vec::with_capacity(n_groups);
    for &seed in &order {
        if assigned[seed] {
            continue;
        }
        if groups.len() == n_groups {
            break;
        }
        let mut group = vec![seed];
        assigned[seed] = true;
        while group.len() < arity {
            // Entity with maximum connectivity to the current group.
            let mut best: Option<(usize, f64)> = None;
            for (cand, &taken) in assigned.iter().enumerate() {
                if taken {
                    continue;
                }
                let conn: f64 = group.iter().map(|&g| s.get(g, cand)).sum();
                match best {
                    Some((_, bconn)) if conn <= bconn => {}
                    _ => best = Some((cand, conn)),
                }
            }
            match best {
                Some((cand, _)) => {
                    assigned[cand] = true;
                    group.push(cand);
                }
                None => break,
            }
        }
        groups.push(group);
    }
    // Any leftovers (can happen when the greedy loop filled n_groups early)
    // go into the emptiest groups that still have room.
    for (e, taken) in assigned.iter_mut().enumerate() {
        if !*taken {
            let slot = groups.iter_mut().filter(|g| g.len() < arity).min_by_key(|g| g.len());
            match slot {
                Some(g) => g.push(e),
                None => groups.push(vec![e]),
            }
            *taken = true;
        }
    }
    groups
}

/// Local refinement: repeatedly swap a pair of entities between two groups
/// when the swap increases the total intra-group volume.  Terminates because
/// the intra-group volume strictly increases at every accepted swap.
fn refine_by_swaps(s: &CommMatrix, groups: &mut Groups) {
    const MAX_PASSES: usize = 8;
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        for ga in 0..groups.len() {
            for gb in (ga + 1)..groups.len() {
                for ia in 0..groups[ga].len() {
                    for ib in 0..groups[gb].len() {
                        let a = groups[ga][ia];
                        let b = groups[gb][ib];
                        let gain = swap_gain(s, &groups[ga], &groups[gb], a, b);
                        if gain > 1e-12 {
                            groups[ga][ia] = b;
                            groups[gb][ib] = a;
                            improved = true;
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Increase in intra-group volume obtained by swapping `a` (in `ga`) with
/// `b` (in `gb`).
fn swap_gain(s: &CommMatrix, ga: &[usize], gb: &[usize], a: usize, b: usize) -> f64 {
    let conn = |x: usize, group: &[usize], exclude: usize| -> f64 {
        group.iter().filter(|&&g| g != exclude).map(|&g| s.get(x, g)).sum()
    };
    let before = conn(a, ga, a) + conn(b, gb, b);
    let after = conn(a, gb, b) + conn(b, ga, a);
    after - before
}

/// Total intra-group volume of a grouping (the objective maximised by
/// [`group_processes`]).  Exposed for tests and diagnostics.
pub fn intra_volume(m: &CommMatrix, groups: &Groups) -> f64 {
    orwl_comm::aggregate::intra_group_volume(&m.symmetrized(), groups) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;

    fn group_of(groups: &Groups, x: usize) -> usize {
        groups.iter().position(|g| g.contains(&x)).unwrap()
    }

    #[test]
    fn chain_pairs_adjacent_entities() {
        // 0-1-2-3 chain, arity 2: optimal grouping is {0,1},{2,3}.
        let m = patterns::chain(4, 1.0);
        let groups = group_processes(&m, 2);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn clustered_matrix_recovers_clusters() {
        // 4 clusters of 4 with strong intra traffic: grouping with arity 4
        // must recover the clusters exactly.
        let m = patterns::clustered(4, 4, 100.0, 1.0);
        let groups = group_processes(&m, 4);
        assert_eq!(groups.len(), 4);
        for c in 0..4 {
            let members: Vec<usize> = (0..4).map(|i| c * 4 + i).collect();
            let g = group_of(&groups, members[0]);
            for &x in &members {
                assert_eq!(group_of(&groups, x), g, "cluster {c} split across groups: {groups:?}");
            }
        }
    }

    #[test]
    fn group_count_is_ceil_p_over_a() {
        for (p, a) in [(8, 2), (8, 3), (7, 3), (5, 8), (1, 1), (9, 4)] {
            let m = patterns::random_symmetric(p, 0.6, 10.0, 3);
            let groups = group_processes(&m, a);
            assert_eq!(groups.len(), p.div_ceil(a), "p={p} a={a}");
            assert!(groups.iter().all(|g| g.len() <= a));
            // Every entity appears exactly once.
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn arity_one_gives_singletons() {
        let m = patterns::all_to_all(5, 3.0);
        let groups = group_processes(&m, 1);
        assert_eq!(groups, (0..5).map(|i| vec![i]).collect::<Groups>());
    }

    #[test]
    fn arity_larger_than_order_gives_single_group() {
        let m = patterns::chain(3, 1.0);
        let groups = group_processes(&m, 10);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_matrix_gives_no_groups() {
        let m = CommMatrix::zeros(0);
        assert!(group_processes(&m, 4).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_arity_panics() {
        group_processes(&CommMatrix::zeros(4), 0);
    }

    #[test]
    fn grouping_beats_naive_split_on_stencil() {
        // 4×4 stencil grouped by 4: affinity grouping must keep at least as
        // much volume internal as the naive row-major split.
        let spec = patterns::StencilSpec { rows: 4, cols: 4, edge_volume: 100.0, corner_volume: 1.0 };
        let m = patterns::stencil_2d(&spec);
        let groups = group_processes(&m, 4);
        let naive: Groups = (0..4).map(|g| (0..4).map(|i| g * 4 + i).collect()).collect();
        assert!(intra_volume(&m, &groups) >= intra_volume(&m, &naive));
    }

    #[test]
    fn grouping_is_deterministic() {
        let m = patterns::random_symmetric(12, 0.5, 50.0, 11);
        let a = group_processes(&m, 3);
        let b = group_processes(&m, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn asymmetric_matrix_uses_total_volume() {
        // Directed edges only: 0→1 heavy, 2→3 heavy, 1→2 light.
        let m = CommMatrix::from_edges(4, &[(0, 1, 100.0), (2, 3, 100.0), (1, 2, 1.0)]);
        let groups = group_processes(&m, 2);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }
}
