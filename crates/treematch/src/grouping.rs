//! The `GroupProcesses` step of Algorithm 1.
//!
//! Given a communication matrix of order `p` and the arity `a` of the
//! current topology level, partition the `p` entities into `⌈p/a⌉` groups of
//! at most `a` members so that as much communication volume as possible
//! stays *inside* groups.  Entities grouped together will later be assigned
//! to the children of a single topology node (the same cache, the same NUMA
//! node, …), so intra-group volume is the volume the placement keeps local.
//!
//! Finding the optimal partition is NP-hard (it generalises graph
//! partitioning); like TreeMatch we use a constructive greedy phase followed
//! by a local-refinement phase (pairwise swaps à la Kernighan–Lin), which is
//! exact on the small instances the unit tests check and close to optimal on
//! stencil-like matrices.
//!
//! # Incremental gain structures
//!
//! Both phases are hot: placement runs *online* (every adaptive
//! re-placement epoch) and at every tree level, so the naive
//! recompute-everything formulation — `O(p² · a)` per level, with an
//! `O(p)` `traffic_of` call inside the seed-sort comparator — dominated
//! placement cost at scale.  The implementation instead maintains
//!
//! * a per-candidate *connectivity-to-the-growing-group* accumulator during
//!   greedy construction (`O(1)` lookup per candidate, `O(p)` update per
//!   adoption), built by the **same ordered additions** the naive sum would
//!   perform, so every comparison sees bit-identical values;
//! * a per-entity per-group connectivity table in the swap-refinement
//!   phase, used as a *sound `O(1)` screen*: pairs whose screened gain
//!   cannot reach the acceptance threshold are skipped, and only
//!   near-threshold pairs fall back to the naive ordered-sum gain, which
//!   remains the sole basis of accept/reject decisions.
//!
//! Groups are therefore **exactly identical** to the naive implementation's
//! (pinned by the regression tests below and the proptests in this file):
//! greedy decisions compare bit-identical floats, and refinement decisions
//! are always taken on the naive gain.

use orwl_comm::aggregate::Groups;
use orwl_comm::matrix::CommMatrix;

/// Gain a swap must exceed to be accepted (strictly positive so refinement
/// terminates: intra-group volume strictly increases at every swap).
const GAIN_THRESHOLD: f64 = 1e-12;

/// Relative slack of the refinement screen: the screened gain is trusted to
/// be within `SCREEN_EPS × (sum of the magnitudes involved)` of the naive
/// gain.  f64 rounding contributes at most `ops · 2⁻⁵³ ≈ ops · 1.1e-16`
/// relative error, so `1e-9` leaves ≈ 10⁷ error-compounding operations of
/// headroom — far beyond the per-pass rebuild horizon.  Communication
/// volumes are non-negative, which makes the magnitude sum a sound error
/// scale.
const SCREEN_EPS: f64 = 1e-9;

/// Reusable buffers of the grouping phases; owned by
/// [`crate::algorithm::PlacementScratch`] so placements running per tree
/// level (or per adaptive epoch) stop allocating.
#[derive(Debug, Default, Clone)]
pub(crate) struct GroupingScratch {
    /// The symmetrised input matrix.
    sym: CommMatrix,
    /// Per-entity total traffic (seed-sort keys).
    traffic: Vec<f64>,
    /// Seed visit order.
    order: Vec<usize>,
    /// Greedy: connectivity of each candidate to the group under
    /// construction.
    conn: Vec<f64>,
    /// Refinement: `gconn[g * p + x]` ≈ connectivity of entity `x` to
    /// group `g`.
    gconn: Vec<f64>,
    /// Refinement: `gg[ga * n_groups + gb]` ≈ total connectivity between
    /// the members of two groups (the block filter).
    gg: Vec<f64>,
    /// Refinement: owning group of each entity.
    owner: Vec<usize>,
    /// Greedy: which entities are already grouped.
    assigned: Vec<bool>,
}

/// Partitions the `m.order()` entities into groups of at most `arity`
/// members, maximising intra-group communication volume.
///
/// The returned groups are ordered by their smallest member, and members are
/// sorted within each group, so the result is deterministic.
///
/// # Panics
/// Panics when `arity == 0`.
pub fn group_processes(m: &CommMatrix, arity: usize) -> Groups {
    group_processes_with(m, arity, &mut GroupingScratch::default())
}

/// Allocation-reusing variant of [`group_processes`]; same output, shared
/// scratch buffers.
pub(crate) fn group_processes_with(m: &CommMatrix, arity: usize, scratch: &mut GroupingScratch) -> Groups {
    assert!(arity > 0, "arity must be at least 1");
    let p = m.order();
    if p == 0 {
        return Vec::new();
    }
    // Work on the symmetrised matrix: grouping only cares about the total
    // volume between two entities, not its direction.
    m.symmetrize_into(&mut scratch.sym);
    let n_groups = p.div_ceil(arity);

    let mut groups = greedy_grouping(arity, n_groups, scratch);
    orwl_obs::time_phase(orwl_obs::SolvePhase::Refine, || {
        refine_by_swaps(&scratch.sym, &mut groups, &mut scratch.gconn, &mut scratch.gg, &mut scratch.owner);
    });

    // Canonical order: sort members, then groups by first member.
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g.first().copied().unwrap_or(usize::MAX));
    groups
}

/// `traffic_of` specialised to a symmetric matrix: the transposed entry is
/// bitwise equal (`s[i][j] = m[i][j] + m[j][i]` and IEEE addition is
/// commutative), so the column walk of the naive sum can be replaced by a
/// second read of the row entry — same bits per addition, hence a
/// bit-identical total, without the column-stride cache misses that
/// dominated the seed sort at `p ≥ 512`.
pub(crate) fn symmetric_traffic_of(s: &CommMatrix, i: usize) -> f64 {
    let mut t = 0.0;
    for j in 0..s.order() {
        let v = s.get(i, j);
        t += v + v;
    }
    t
}

/// Greedy construction: seed each group with the heaviest-traffic unassigned
/// entity, then repeatedly add the unassigned entity with the strongest
/// connection to the group.
///
/// `scratch.conn[cand]` carries each candidate's connectivity to the group
/// under construction, accumulated one `+= s[member][cand]` per adoption —
/// the exact ordered additions of the naive per-candidate rescan, so the
/// argmax comparisons are bit-identical while the per-adoption cost drops
/// from `O(group · p)` to `O(p)`.
fn greedy_grouping(arity: usize, n_groups: usize, scratch: &mut GroupingScratch) -> Groups {
    let s = &scratch.sym;
    let p = s.order();
    let assigned = &mut scratch.assigned;
    assigned.clear();
    assigned.resize(p, false);
    // Heaviest communicators first so they get to pick their partners; the
    // sort keys are precomputed once (`traffic_of` inside the comparator
    // would cost O(p) per comparison — O(p² log p) for the sort).
    scratch.traffic.clear();
    scratch.traffic.extend((0..p).map(|i| symmetric_traffic_of(s, i)));
    let traffic = &scratch.traffic;
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..p);
    order.sort_by(|&a, &b| {
        traffic[b].partial_cmp(&traffic[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });

    let conn = &mut scratch.conn;
    conn.clear();
    conn.resize(p, 0.0);
    let mut groups: Groups = Vec::with_capacity(n_groups);
    for &seed in order.iter() {
        if assigned[seed] {
            continue;
        }
        if groups.len() == n_groups {
            break;
        }
        let mut group = vec![seed];
        assigned[seed] = true;
        // Connectivity of every candidate to the one-member group.  Stale
        // entries of previous groups are overwritten wholesale; entries of
        // assigned entities are never read.
        for (cand, c) in conn.iter_mut().enumerate() {
            *c = s.get(seed, cand);
        }
        while group.len() < arity {
            // Entity with maximum connectivity to the current group.
            let mut best: Option<(usize, f64)> = None;
            for (cand, &taken) in assigned.iter().enumerate() {
                if taken {
                    continue;
                }
                match best {
                    Some((_, bconn)) if conn[cand] <= bconn => {}
                    _ => best = Some((cand, conn[cand])),
                }
            }
            match best {
                Some((cand, _)) => {
                    assigned[cand] = true;
                    group.push(cand);
                    // The adopted member's row extends every remaining
                    // candidate's ordered connectivity sum.
                    for (x, c) in conn.iter_mut().enumerate() {
                        *c += s.get(cand, x);
                    }
                }
                None => break,
            }
        }
        groups.push(group);
    }
    // Any leftovers (can happen when the greedy loop filled n_groups early)
    // go into the emptiest groups that still have room.
    for (e, taken) in assigned.iter_mut().enumerate() {
        if !*taken {
            let slot = groups.iter_mut().filter(|g| g.len() < arity).min_by_key(|g| g.len());
            match slot {
                Some(g) => g.push(e),
                None => groups.push(vec![e]),
            }
            *taken = true;
        }
    }
    groups
}

/// Local refinement: repeatedly swap a pair of entities between two groups
/// when the swap increases the total intra-group volume.  Terminates because
/// the intra-group volume strictly increases at every accepted swap.
///
/// # Pass semantics
///
/// Each pass scans group pairs `(ga < gb)` and member **positions**
/// `(ia, ib)` in increasing order.  An accepted swap immediately replaces
/// the entities at those positions, and the *same* pass continues scanning
/// the updated membership: the next `(ia, ib)` iteration re-reads
/// `groups[ga][ia]` / `groups[gb][ib]`, so an entity swapped into position
/// `ia` is itself a candidate for the remaining `ib`s of the pass.  Passes
/// repeat (at most [`MAX_PASSES`](const@Self)) until one full pass accepts
/// no swap.  These semantics are pinned by `refinement_pass_semantics_are_pinned`
/// below — the incremental screen must never change them.
///
/// # Screening
///
/// `gconn[g · p + x]` approximates entity `x`'s connectivity to group `g`;
/// it is built once before the pass loop, and on every accepted swap the
/// two affected rows are rebuilt wholesale from the new memberships (never
/// delta-updated — see the maintenance comment below; this is what keeps
/// every screened value a cancellation-free sum of non-negative volumes).
/// Two sound filters sit in front of the naive gain:
///
/// 1. a **group-pair block filter** — a swap can only gain when it moves
///    cross-connectivity inside, and the gain is bounded by
///    `max_a conn(a, gb) + max_b conn(b, ga)`; most group pairs (distant
///    stencil blocks, disjoint clusters) fail this bound outright and skip
///    the whole `|ga| × |gb|` inner loop;
/// 2. a **per-pair screen** on the approximated gain.
///
/// Both filters carry a rounding slack of `SCREEN_EPS × (the magnitudes
/// involved + max |s|)`: volumes are non-negative, so current magnitudes
/// bound the reordering error, and the extra `max |s|` term covers
/// cancellation residue left by delta updates.  Pairs that survive are
/// decided by the naive ordered-sum [`swap_gain`], keeping accepted swaps
/// (and therefore the final groups) exactly those of the naive
/// implementation.
fn refine_by_swaps(
    s: &CommMatrix,
    groups: &mut Groups,
    gconn: &mut Vec<f64>,
    gg: &mut Vec<f64>,
    owner: &mut Vec<usize>,
) {
    const MAX_PASSES: usize = 8;
    let p = s.order();
    let n_groups = groups.len();
    if n_groups < 2 {
        return;
    }
    // Build the connectivity table once — gconn[g][x] = Σ s[x][m] over the
    // members of g in list order, reading the symmetric matrix by rows
    // (`s[m][x]` is bitwise `s[x][m]`, see [`symmetric_traffic_of`]) — and
    // recompute the two affected rows wholesale on every accepted swap.
    // Maintenance therefore never subtracts: every table value stays a
    // fresh ordered sum of non-negative volumes, an exact zero when the
    // true connectivity is zero, and within `SCREEN_EPS` relative error of
    // any reordering — which is what makes the purely relative slack of
    // the filters sound.
    gconn.clear();
    gconn.resize(n_groups * p, 0.0);
    for (g, members) in groups.iter().enumerate() {
        let row = &mut gconn[g * p..(g + 1) * p];
        for &m in members {
            for (x, acc) in row.iter_mut().enumerate() {
                *acc += s.get(m, x);
            }
        }
    }
    // Aggregate group-to-group connectivity for the block filter
    // (`gg[ga][gb]` = Σ over ga's members of their gconn towards gb),
    // streamed row-major over gconn so the build stays cache-friendly.
    owner.clear();
    owner.resize(p, usize::MAX);
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            owner[m] = g;
        }
    }
    gg.clear();
    gg.resize(n_groups * n_groups, 0.0);
    for g in 0..n_groups {
        let row = &gconn[g * p..(g + 1) * p];
        for (x, &c) in row.iter().enumerate() {
            if owner[x] != usize::MAX {
                gg[owner[x] * n_groups + g] += c;
            }
        }
    }
    for _ in 0..MAX_PASSES {
        let mut improved = false;
        for ga in 0..n_groups {
            for gb in (ga + 1)..n_groups {
                // Block filter: every pair's naive gain is bounded by
                // conn(a, gb) + conn(b, ga) — the subtracted home terms are
                // ordered sums of non-negative volumes, hence ≥ 0 exactly —
                // and those bounds sum to at most the aggregate group-pair
                // connectivity.  Distant blocks (zero cross traffic) skip
                // their whole |ga| × |gb| inner loop in O(1).
                let gg_ab = gg[ga * n_groups + gb];
                let gg_ba = gg[gb * n_groups + ga];
                if gg_ab + gg_ba + SCREEN_EPS * (gg_ab + gg_ba) <= GAIN_THRESHOLD {
                    continue;
                }
                for ia in 0..groups[ga].len() {
                    for ib in 0..groups[gb].len() {
                        let a = groups[ga][ia];
                        let b = groups[gb][ib];
                        let a_ga = gconn[ga * p + a];
                        let a_gb = gconn[gb * p + a];
                        let b_ga = gconn[ga * p + b];
                        let b_gb = gconn[gb * p + b];
                        // `s[a][b]` and `s[b][a]` are bitwise equal on the
                        // symmetric matrix.
                        let v = s.get(a, b);
                        let screened = (a_gb - v) + (b_ga - v) - (a_ga - s.get(a, a)) - (b_gb - s.get(b, b));
                        let slack =
                            SCREEN_EPS * (a_ga + a_gb + b_ga + b_gb + s.get(a, a) + s.get(b, b) + 2.0 * v);
                        if screened + slack <= GAIN_THRESHOLD {
                            continue; // certain reject: naive gain cannot pass
                        }
                        let gain = swap_gain(s, &groups[ga], &groups[gb], a, b);
                        if gain > GAIN_THRESHOLD {
                            groups[ga][ia] = b;
                            groups[gb][ib] = a;
                            owner[a] = gb;
                            owner[b] = ga;
                            // Rebuild the two affected rows from the new
                            // memberships (no deltas — see above).
                            for g in [ga, gb] {
                                let row = &mut gconn[g * p..(g + 1) * p];
                                row.fill(0.0);
                                for &m in &groups[g] {
                                    for (x, acc) in row.iter_mut().enumerate() {
                                        *acc += s.get(m, x);
                                    }
                                }
                            }
                            // Refresh the aggregate rows/columns the swap
                            // touched: ga/gb's memberships changed and every
                            // group's connectivity towards ga/gb shifted.
                            for g in 0..n_groups {
                                let mut to_a = 0.0;
                                let mut to_b = 0.0;
                                for &m in &groups[g] {
                                    to_a += gconn[ga * p + m];
                                    to_b += gconn[gb * p + m];
                                }
                                gg[g * n_groups + ga] = to_a;
                                gg[g * n_groups + gb] = to_b;
                            }
                            for (h, acc) in gg[ga * n_groups..(ga + 1) * n_groups].iter_mut().enumerate() {
                                *acc = groups[ga].iter().map(|&m| gconn[h * p + m]).sum();
                            }
                            for (h, acc) in gg[gb * n_groups..(gb + 1) * n_groups].iter_mut().enumerate() {
                                *acc = groups[gb].iter().map(|&m| gconn[h * p + m]).sum();
                            }
                            improved = true;
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Increase in intra-group volume obtained by swapping `a` (in `ga`) with
/// `b` (in `gb`).  This is the naive ordered-sum gain every accepted swap
/// is decided on (see [`refine_by_swaps`]).
fn swap_gain(s: &CommMatrix, ga: &[usize], gb: &[usize], a: usize, b: usize) -> f64 {
    let conn = |x: usize, group: &[usize], exclude: usize| -> f64 {
        group.iter().filter(|&&g| g != exclude).map(|&g| s.get(x, g)).sum()
    };
    let before = conn(a, ga, a) + conn(b, gb, b);
    let after = conn(a, gb, b) + conn(b, ga, a);
    after - before
}

/// Total intra-group volume of a grouping (the objective maximised by
/// [`group_processes`]).  Exposed for tests and diagnostics.
pub fn intra_volume(m: &CommMatrix, groups: &Groups) -> f64 {
    orwl_comm::aggregate::intra_group_volume(&m.symmetrized(), groups) / 2.0
}

/// The pre-optimisation implementation, retained verbatim as the reference
/// the incremental one is pinned against (proptests below): recompute every
/// candidate connectivity and swap gain from scratch.
#[cfg(test)]
pub(crate) mod naive {
    use super::*;

    pub fn group_processes(m: &CommMatrix, arity: usize) -> Groups {
        assert!(arity > 0, "arity must be at least 1");
        let p = m.order();
        if p == 0 {
            return Vec::new();
        }
        let s = m.symmetrized();
        let n_groups = p.div_ceil(arity);
        let mut groups = greedy_grouping(&s, arity, n_groups);
        refine_by_swaps(&s, &mut groups);
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g.first().copied().unwrap_or(usize::MAX));
        groups
    }

    fn greedy_grouping(s: &CommMatrix, arity: usize, n_groups: usize) -> Groups {
        let p = s.order();
        let mut assigned = vec![false; p];
        let mut order: Vec<usize> = (0..p).collect();
        order.sort_by(|&a, &b| {
            s.traffic_of(b).partial_cmp(&s.traffic_of(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });

        let mut groups: Groups = Vec::with_capacity(n_groups);
        for &seed in &order {
            if assigned[seed] {
                continue;
            }
            if groups.len() == n_groups {
                break;
            }
            let mut group = vec![seed];
            assigned[seed] = true;
            while group.len() < arity {
                let mut best: Option<(usize, f64)> = None;
                for (cand, &taken) in assigned.iter().enumerate() {
                    if taken {
                        continue;
                    }
                    let conn: f64 = group.iter().map(|&g| s.get(g, cand)).sum();
                    match best {
                        Some((_, bconn)) if conn <= bconn => {}
                        _ => best = Some((cand, conn)),
                    }
                }
                match best {
                    Some((cand, _)) => {
                        assigned[cand] = true;
                        group.push(cand);
                    }
                    None => break,
                }
            }
            groups.push(group);
        }
        for (e, taken) in assigned.iter_mut().enumerate() {
            if !*taken {
                let slot = groups.iter_mut().filter(|g| g.len() < arity).min_by_key(|g| g.len());
                match slot {
                    Some(g) => g.push(e),
                    None => groups.push(vec![e]),
                }
                *taken = true;
            }
        }
        groups
    }

    fn refine_by_swaps(s: &CommMatrix, groups: &mut Groups) {
        const MAX_PASSES: usize = 8;
        for _ in 0..MAX_PASSES {
            let mut improved = false;
            for ga in 0..groups.len() {
                for gb in (ga + 1)..groups.len() {
                    for ia in 0..groups[ga].len() {
                        for ib in 0..groups[gb].len() {
                            let a = groups[ga][ia];
                            let b = groups[gb][ib];
                            let gain = swap_gain(s, &groups[ga], &groups[gb], a, b);
                            if gain > GAIN_THRESHOLD {
                                groups[ga][ia] = b;
                                groups[gb][ib] = a;
                                improved = true;
                            }
                        }
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::patterns;
    use proptest::prelude::*;

    fn group_of(groups: &Groups, x: usize) -> usize {
        groups.iter().position(|g| g.contains(&x)).unwrap()
    }

    #[test]
    fn chain_pairs_adjacent_entities() {
        // 0-1-2-3 chain, arity 2: optimal grouping is {0,1},{2,3}.
        let m = patterns::chain(4, 1.0);
        let groups = group_processes(&m, 2);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn clustered_matrix_recovers_clusters() {
        // 4 clusters of 4 with strong intra traffic: grouping with arity 4
        // must recover the clusters exactly.
        let m = patterns::clustered(4, 4, 100.0, 1.0);
        let groups = group_processes(&m, 4);
        assert_eq!(groups.len(), 4);
        for c in 0..4 {
            let members: Vec<usize> = (0..4).map(|i| c * 4 + i).collect();
            let g = group_of(&groups, members[0]);
            for &x in &members {
                assert_eq!(group_of(&groups, x), g, "cluster {c} split across groups: {groups:?}");
            }
        }
    }

    #[test]
    fn group_count_is_ceil_p_over_a() {
        for (p, a) in [(8, 2), (8, 3), (7, 3), (5, 8), (1, 1), (9, 4)] {
            let m = patterns::random_symmetric(p, 0.6, 10.0, 3);
            let groups = group_processes(&m, a);
            assert_eq!(groups.len(), p.div_ceil(a), "p={p} a={a}");
            assert!(groups.iter().all(|g| g.len() <= a));
            // Every entity appears exactly once.
            let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn arity_one_gives_singletons() {
        let m = patterns::all_to_all(5, 3.0);
        let groups = group_processes(&m, 1);
        assert_eq!(groups, (0..5).map(|i| vec![i]).collect::<Groups>());
    }

    #[test]
    fn arity_larger_than_order_gives_single_group() {
        let m = patterns::chain(3, 1.0);
        let groups = group_processes(&m, 10);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_matrix_gives_no_groups() {
        let m = CommMatrix::zeros(0);
        assert!(group_processes(&m, 4).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_arity_panics() {
        group_processes(&CommMatrix::zeros(4), 0);
    }

    #[test]
    fn grouping_beats_naive_split_on_stencil() {
        // 4×4 stencil grouped by 4: affinity grouping must keep at least as
        // much volume internal as the naive row-major split.
        let spec = patterns::StencilSpec { rows: 4, cols: 4, edge_volume: 100.0, corner_volume: 1.0 };
        let m = patterns::stencil_2d(&spec);
        let groups = group_processes(&m, 4);
        let naive: Groups = (0..4).map(|g| (0..4).map(|i| g * 4 + i).collect()).collect();
        assert!(intra_volume(&m, &groups) >= intra_volume(&m, &naive));
    }

    #[test]
    fn grouping_is_deterministic() {
        let m = patterns::random_symmetric(12, 0.5, 50.0, 11);
        let a = group_processes(&m, 3);
        let b = group_processes(&m, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn asymmetric_matrix_uses_total_volume() {
        // Directed edges only: 0→1 heavy, 2→3 heavy, 1→2 light.
        let m = CommMatrix::from_edges(4, &[(0, 1, 100.0), (2, 3, 100.0), (1, 2, 1.0)]);
        let groups = group_processes(&m, 2);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn scratch_reuse_across_different_orders_is_clean() {
        let mut scratch = GroupingScratch::default();
        for (p, a) in [(12, 3), (5, 2), (20, 4), (12, 3)] {
            let m = patterns::random_symmetric(p, 0.5, 100.0, 17);
            assert_eq!(group_processes_with(&m, a, &mut scratch), group_processes(&m, a), "p={p} a={a}");
        }
    }

    /// Regression pin: exact outputs of the pre-optimisation implementation
    /// on fixed seeded matrices, locking both the grouping decisions and
    /// the in-pass swap semantics documented on [`refine_by_swaps`].
    #[test]
    fn grouping_outputs_are_pinned() {
        let pins: [(u64, Groups); 3] = [
            (
                3,
                vec![
                    vec![0, 5, 13, 18],
                    vec![1, 3, 15, 17],
                    vec![2, 8, 10, 16],
                    vec![4, 21, 22, 23],
                    vec![6, 7, 14, 20],
                    vec![9, 11, 12, 19],
                ],
            ),
            (
                11,
                vec![
                    vec![0, 6, 14, 17],
                    vec![1, 3, 9, 10],
                    vec![2, 4, 15, 19],
                    vec![5, 8, 18, 21],
                    vec![7, 20, 22, 23],
                    vec![11, 12, 13, 16],
                ],
            ),
            (
                42,
                vec![
                    vec![0, 1, 7, 21],
                    vec![2, 10, 16, 22],
                    vec![3, 11, 17, 18],
                    vec![4, 6, 12, 23],
                    vec![5, 13, 14, 19],
                    vec![8, 9, 15, 20],
                ],
            ),
        ];
        for (seed, expected) in pins {
            let m = patterns::random_symmetric(24, 0.5, 100.0, seed);
            assert_eq!(group_processes(&m, 4), expected, "seed {seed}");
        }
    }

    /// The in-pass update semantics: an accepted swap is visible to the
    /// remainder of the same pass (positions are re-read), pinned on the
    /// anisotropic rotating-sweep matrices whose values are *not* exactly
    /// representable sums — the case where screening must still reproduce
    /// the naive decisions.
    #[test]
    fn refinement_pass_semantics_are_pinned() {
        let (before, after) = patterns::rotating_sweep_matrices(6, 4096.0, 64.0);
        assert_eq!(
            group_processes(&before, 8),
            vec![
                vec![0, 1, 6, 7, 8, 9, 10, 11],
                vec![2, 3, 4, 5, 24, 25, 30, 31],
                vec![12, 13, 14, 15, 18, 19, 20, 21],
                vec![16, 17, 22, 23, 26, 27, 28, 29],
                vec![32, 33, 34, 35],
            ]
        );
        assert_eq!(
            group_processes(&after, 8),
            vec![
                vec![0, 1, 6, 7, 13, 19, 25, 31],
                vec![2, 3, 8, 9, 14, 20, 26, 32],
                vec![4, 5, 10, 11, 16, 17, 22, 23],
                vec![12, 15, 18, 21, 24, 27, 30, 33],
                vec![28, 29, 34, 35],
            ]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The incremental implementation is output-identical to the
        // retained naive reference on random *float-valued* matrices
        // (inexact sums — the screening path) across densities and arities.
        #[test]
        fn incremental_matches_naive_reference(
            n in 1usize..28,
            arity in 1usize..6,
            density in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let m = patterns::random_symmetric(n, density, 987.654321, seed);
            prop_assert_eq!(group_processes(&m, arity), naive::group_processes(&m, arity));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Same identity on structured patterns (stencil, clustered,
        // power-law) — the shapes the sweep actually runs.
        #[test]
        fn incremental_matches_naive_on_structured_patterns(side in 2usize..6, arity in 2usize..9, seed in 0u64..100) {
            let stencil = patterns::stencil_2d(&patterns::StencilSpec {
                rows: side,
                cols: side + 1,
                edge_volume: 4096.0 * 0.2, // inexact on purpose
                corner_volume: 64.0 * 0.2,
            });
            prop_assert_eq!(group_processes(&stencil, arity), naive::group_processes(&stencil, arity));
            let pl = patterns::power_law(side * (side + 1), 3, 1.0e6, seed);
            prop_assert_eq!(group_processes(&pl, arity), naive::group_processes(&pl, arity));
            let cl = patterns::clustered(side, side + 1, 1000.0, 1.0);
            prop_assert_eq!(group_processes(&cl, arity), naive::group_processes(&cl, arity));
        }
    }
}
