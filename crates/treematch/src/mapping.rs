//! Placement results: which PU every compute and control thread should be
//! bound to.

use orwl_topo::bitmap::CpuSet;
use orwl_topo::topology::Topology;
use std::fmt;

/// The outcome of a placement computation.
///
/// `compute[t]` is the OS index of the PU that compute thread `t` should be
/// bound to, or `None` when the policy leaves the thread to the OS scheduler
/// (the paper's "NoBind" situation, or an unmappable control thread).
/// `control[k]` is the same for the runtime's control threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Binding of each compute thread.
    pub compute: Vec<Option<usize>>,
    /// Binding of each control thread.
    pub control: Vec<Option<usize>>,
}

impl Placement {
    /// A placement that binds nothing (the "NoBind"/OS-scheduled baseline).
    pub fn unbound(n_compute: usize, n_control: usize) -> Self {
        Placement { compute: vec![None; n_compute], control: vec![None; n_control] }
    }

    /// Number of compute threads covered.
    pub fn n_compute(&self) -> usize {
        self.compute.len()
    }

    /// Number of control threads covered.
    pub fn n_control(&self) -> usize {
        self.control.len()
    }

    /// Returns the compute mapping as a dense `Vec<usize>`, substituting
    /// `fallback(t)` for unbound threads.  Locality metrics need a concrete
    /// PU for every thread; for unbound threads the conventional stand-in is
    /// a round-robin guess of where the OS might run them.
    pub fn compute_mapping_with<F: Fn(usize) -> usize>(&self, fallback: F) -> Vec<usize> {
        self.compute.iter().enumerate().map(|(t, pu)| pu.unwrap_or_else(|| fallback(t))).collect()
    }

    /// Dense compute mapping where unbound threads default to PU 0.
    pub fn compute_mapping_or_zero(&self) -> Vec<usize> {
        self.compute_mapping_with(|_| 0)
    }

    /// Fraction of compute threads that received a concrete binding.
    pub fn bound_fraction(&self) -> f64 {
        if self.compute.is_empty() {
            return 1.0;
        }
        self.compute.iter().filter(|p| p.is_some()).count() as f64 / self.compute.len() as f64
    }

    /// True when no two *bound* compute threads share a PU.
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for pu in self.compute.iter().flatten() {
            if !seen.insert(*pu) {
                return false;
            }
        }
        true
    }

    /// Converts the compute bindings into singleton cpusets usable with a
    /// [`Binder`](orwl_topo::binding::Binder).  Unbound threads get `None`.
    pub fn compute_cpusets(&self) -> Vec<Option<CpuSet>> {
        self.compute.iter().map(|pu| pu.map(CpuSet::singleton)).collect()
    }

    /// Converts the control bindings into singleton cpusets.
    pub fn control_cpusets(&self) -> Vec<Option<CpuSet>> {
        self.control.iter().map(|pu| pu.map(CpuSet::singleton)).collect()
    }

    /// Checks that every bound PU exists in `topo`; returns the offending
    /// thread index on failure.
    pub fn validate_against(&self, topo: &Topology) -> Result<(), usize> {
        for (t, pu) in self.compute.iter().enumerate() {
            if let Some(p) = pu {
                if topo.pu_by_os_index(*p).is_none() {
                    return Err(t);
                }
            }
        }
        for (k, pu) in self.control.iter().enumerate() {
            if let Some(p) = pu {
                if topo.pu_by_os_index(*p).is_none() {
                    return Err(self.compute.len() + k);
                }
            }
        }
        Ok(())
    }

    /// Number of distinct NUMA nodes (or packages when the topology has no
    /// NUMA level) used by the bound compute threads.
    pub fn numa_nodes_used(&self, topo: &Topology) -> usize {
        use orwl_topo::object::ObjectType;
        let nodes = {
            let numa = topo.objects_of_type(ObjectType::NumaNode);
            if numa.is_empty() {
                topo.objects_of_type(ObjectType::Package)
            } else {
                numa
            }
        };
        if nodes.is_empty() {
            return if self.compute.iter().any(Option::is_some) { 1 } else { 0 };
        }
        let mut used = std::collections::HashSet::new();
        for pu in self.compute.iter().flatten() {
            for (i, node) in nodes.iter().enumerate() {
                if node.cpuset.is_set(*pu) {
                    used.insert(i);
                }
            }
        }
        used.len()
    }
}

impl fmt::Display for Placement {
    /// One line per thread: `compute[3] -> PU 17` / `control[0] -> (os)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, pu) in self.compute.iter().enumerate() {
            match pu {
                Some(p) => writeln!(f, "compute[{t}] -> PU {p}")?,
                None => writeln!(f, "compute[{t}] -> (os)")?,
            }
        }
        for (k, pu) in self.control.iter().enumerate() {
            match pu {
                Some(p) => writeln!(f, "control[{k}] -> PU {p}")?,
                None => writeln!(f, "control[{k}] -> (os)")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_topo::synthetic;

    #[test]
    fn unbound_placement_has_no_bindings() {
        let p = Placement::unbound(4, 2);
        assert_eq!(p.n_compute(), 4);
        assert_eq!(p.n_control(), 2);
        assert_eq!(p.bound_fraction(), 0.0);
        assert!(p.is_injective());
        assert_eq!(p.compute_mapping_or_zero(), vec![0, 0, 0, 0]);
        assert_eq!(p.compute_cpusets(), vec![None, None, None, None]);
    }

    #[test]
    fn mapping_with_fallback() {
        let p = Placement { compute: vec![Some(3), None, Some(5)], control: vec![] };
        assert_eq!(p.compute_mapping_with(|t| t + 100), vec![3, 101, 5]);
        assert!((p.bound_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn injectivity_detects_shared_pu() {
        let ok = Placement { compute: vec![Some(0), Some(1), None, None], control: vec![] };
        assert!(ok.is_injective());
        let bad = Placement { compute: vec![Some(0), Some(0)], control: vec![] };
        assert!(!bad.is_injective());
    }

    #[test]
    fn validate_against_topology() {
        let topo = synthetic::laptop(); // 8 PUs
        let ok = Placement { compute: vec![Some(0), Some(7)], control: vec![Some(3)] };
        assert!(ok.validate_against(&topo).is_ok());
        let bad = Placement { compute: vec![Some(0), Some(64)], control: vec![] };
        assert_eq!(bad.validate_against(&topo), Err(1));
        let bad_ctl = Placement { compute: vec![Some(0)], control: vec![Some(99)] };
        assert_eq!(bad_ctl.validate_against(&topo), Err(1));
    }

    #[test]
    fn numa_nodes_used_counts_distinct_sockets() {
        let topo = synthetic::cluster2016_subset(4).unwrap(); // 4 sockets × 8 cores
        let one_socket = Placement { compute: (0..8).map(Some).collect(), control: vec![] };
        assert_eq!(one_socket.numa_nodes_used(&topo), 1);
        let two_sockets = Placement { compute: vec![Some(0), Some(9)], control: vec![] };
        assert_eq!(two_sockets.numa_nodes_used(&topo), 2);
        let unbound = Placement::unbound(8, 0);
        assert_eq!(unbound.numa_nodes_used(&topo), 0);
    }

    #[test]
    fn display_mentions_os_and_pu() {
        let p = Placement { compute: vec![Some(1), None], control: vec![Some(2)] };
        let text = format!("{p}");
        assert!(text.contains("compute[0] -> PU 1"));
        assert!(text.contains("compute[1] -> (os)"));
        assert!(text.contains("control[0] -> PU 2"));
    }

    #[test]
    fn cpusets_are_singletons() {
        let p = Placement { compute: vec![Some(4)], control: vec![Some(6), None] };
        assert_eq!(p.compute_cpusets()[0], Some(CpuSet::singleton(4)));
        assert_eq!(p.control_cpusets(), vec![Some(CpuSet::singleton(6)), None]);
    }
}
