//! Algorithm 1 of the paper: the TreeMatch-based mapping algorithm with the
//! two ORWL-specific extensions (control threads and oversubscription).
//!
//! ```text
//! Input: T    — the topology tree
//! Input: m    — the communication matrix
//! Input: D    — the depth of the tree
//! 1  m ← extend_to_manage_control_threads(m)
//! 2  T ← manage_oversubscription(T, m)
//! 3  groups[1..D−1] = ∅
//! 4  foreach depth ← D−1..1            // start from the leaves
//! 5      p ← order of m
//! 6      groups[depth] ← GroupProcesses(T, m, depth)
//! 7      m ← AggregateComMatrix(m, groups[depth])
//! 8  MapGroups(T, groups)
//! ```
//!
//! The result is a [`Placement`]: a PU for every computation thread and —
//! when the hardware allows it — for every control thread.

use crate::control::{decide_control_mode, extend_for_control, ControlPlacementMode, ControlThreadSpec};
use crate::grouping::{group_processes_with, GroupingScratch};
use crate::mapping::Placement;
use crate::oversub::manage_oversubscription;
use orwl_comm::aggregate::{aggregate_into, AggregateScratch, Groups};
use orwl_comm::matrix::CommMatrix;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::{Topology, TreeShape};

/// Reusable buffers of the whole placement pipeline: the per-level
/// current/aggregated matrices of [`tree_match_assign`] plus the grouping
/// and aggregation scratch.  A caller that computes placements repeatedly —
/// the adaptive engine re-placing every drift epoch, a policy sweep, the
/// scaling harness — holds one `PlacementScratch` and stops paying a dense
/// `O(p²)` allocation per tree level per placement.
#[derive(Debug, Default, Clone)]
pub struct PlacementScratch {
    /// The matrix of the level being grouped.
    cur: CommMatrix,
    /// The aggregated matrix the next level will group.
    next: CommMatrix,
    /// Aggregation owner table.
    agg: AggregateScratch,
    /// Grouping-phase buffers.
    grouping: GroupingScratch,
}

impl PlacementScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PlacementScratch::default()
    }
}

/// Configuration of the mapping algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TreeMatchConfig {
    /// Control threads the runtime will start (set `count` to 0 when the
    /// caller only wants compute threads placed).
    pub control: ControlThreadSpec,
}

/// The TreeMatch-based placement algorithm (Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct TreeMatchMapper {
    config: TreeMatchConfig,
}

impl TreeMatchMapper {
    /// Creates a mapper with the given configuration.
    pub fn new(config: TreeMatchConfig) -> Self {
        TreeMatchMapper { config }
    }

    /// Creates a mapper that only places compute threads.
    pub fn compute_only() -> Self {
        TreeMatchMapper { config: TreeMatchConfig { control: ControlThreadSpec::with_count(0) } }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TreeMatchConfig {
        &self.config
    }

    /// Runs Algorithm 1: computes a placement of the `m.order()` compute
    /// threads (plus the configured control threads) onto the PUs of `topo`.
    ///
    /// Returns an all-unbound placement when the matrix is empty.
    pub fn compute_placement(&self, topo: &Topology, m: &CommMatrix) -> Placement {
        self.compute_placement_with(topo, m, &mut PlacementScratch::new())
    }

    /// Allocation-reusing variant of
    /// [`compute_placement`](TreeMatchMapper::compute_placement): identical
    /// output, but every dense intermediate lives in `scratch` and is
    /// reused across calls — the form the adaptive engine uses so epoch
    /// re-placements stop allocating.
    pub fn compute_placement_with(
        &self,
        topo: &Topology,
        m: &CommMatrix,
        scratch: &mut PlacementScratch,
    ) -> Placement {
        let n_compute = m.order();
        let n_control = self.config.control.count;
        if n_compute == 0 {
            return Placement::unbound(0, n_control);
        }

        let mode = decide_control_mode(topo, n_compute, n_control);
        match mode {
            ControlPlacementMode::HyperthreadReserve => self.place_with_hyperthread_reserve(topo, m, scratch),
            ControlPlacementMode::SpareCores => self.place_with_spare_cores(topo, m, scratch),
            ControlPlacementMode::Unmapped => {
                let compute = self.place_on_pus(topo, m, scratch);
                Placement { compute, control: vec![None; n_control] }
            }
        }
    }

    /// Line 1 variant (a): hyperthreading available — place compute threads
    /// one per physical core (first hardware thread), and put each control
    /// thread on the sibling hardware thread of the core hosting the compute
    /// thread it exchanges the most with.
    fn place_with_hyperthread_reserve(
        &self,
        topo: &Topology,
        m: &CommMatrix,
        scratch: &mut PlacementScratch,
    ) -> Placement {
        let n_compute = m.order();
        let n_control = self.config.control.count;

        // Tree with the cores as leaves: drop the PU level.
        let full = topo.shape();
        let core_shape = TreeShape::new(full.arities[..full.arities.len() - 1].to_vec());
        let entity_to_core = tree_match_assign_with(&core_shape, m, scratch);

        let cores = topo.objects_of_type(ObjectType::Core);
        let compute: Vec<Option<usize>> = entity_to_core
            .iter()
            .map(|&core_idx| {
                let core = cores[core_idx % cores.len()];
                core.cpuset.first()
            })
            .collect();

        // Control thread k goes to the sibling hyperthread of the core of
        // its most-communicating served compute thread.
        let mut control = Vec::with_capacity(n_control);
        for k in 0..n_control {
            let served = self.config.control.served_by(k, n_compute);
            let target = served
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    m.traffic_of(a).partial_cmp(&m.traffic_of(b)).unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(k.min(n_compute.saturating_sub(1)));
            let core_idx = entity_to_core[target] % cores.len();
            let core = cores[core_idx];
            // Second PU of the core (the reserved hyperthread); fall back to
            // the first when the core is single-threaded.
            let sibling = core.cpuset.nth(1).or_else(|| core.cpuset.first());
            control.push(sibling);
        }
        Placement { compute, control }
    }

    /// Line 1 variant (b): no SMT but spare cores — extend the matrix with
    /// the control threads and map everything onto the PUs.
    fn place_with_spare_cores(
        &self,
        topo: &Topology,
        m: &CommMatrix,
        scratch: &mut PlacementScratch,
    ) -> Placement {
        let n_compute = m.order();
        let n_control = self.config.control.count;
        let ext = extend_for_control(m, &self.config.control);
        let all = self.place_on_pus(topo, &ext, scratch);
        let compute = all[..n_compute].to_vec();
        let control = all[n_compute..n_compute + n_control].to_vec();
        Placement { compute, control }
    }

    /// Core of the algorithm: map every entity of `m` to a PU of `topo`.
    fn place_on_pus(
        &self,
        topo: &Topology,
        m: &CommMatrix,
        scratch: &mut PlacementScratch,
    ) -> Vec<Option<usize>> {
        let shape = topo.shape();
        let entity_to_leaf = tree_match_assign_with(&shape, m, scratch);
        let pus = topo.pus();
        entity_to_leaf.iter().map(|&leaf| pus.get(leaf % pus.len()).map(|pu| pu.os_index)).collect()
    }
}

/// Lines 2–8 of Algorithm 1 on a balanced tree shape: returns, for every
/// entity of the matrix, the index of the **physical leaf** it is assigned
/// to (several entities may share a leaf under oversubscription).
pub fn tree_match_assign(shape: &TreeShape, m: &CommMatrix) -> Vec<usize> {
    tree_match_assign_with(shape, m, &mut PlacementScratch::new())
}

/// Allocation-reusing variant of [`tree_match_assign`]: identical output,
/// with the per-level matrices ping-ponging between the two scratch
/// buffers instead of being cloned and reallocated at every level.
pub fn tree_match_assign_with(
    shape: &TreeShape,
    m: &CommMatrix,
    scratch: &mut PlacementScratch,
) -> Vec<usize> {
    let p = m.order();
    if p == 0 {
        return Vec::new();
    }
    // Degenerate tree (no internal level): everything on leaf 0.
    if shape.arities.is_empty() {
        return vec![0; p];
    }

    // Line 2: add a virtual level when there are more entities than leaves.
    let plan = manage_oversubscription(shape, p);
    let arities = &plan.shape.arities;
    let levels = arities.len();

    // Lines 4–7: group from the leaves towards the root, aggregating the
    // matrix between levels.  The level matrices ping-pong between the two
    // scratch buffers: `cur` is grouped, aggregated into `next`, then the
    // roles swap — no per-level clone or allocation once the buffers are
    // warm.
    let mut partitions: Vec<Groups> = Vec::with_capacity(levels);
    scratch.cur.copy_from(m);
    // Per-phase timing accumulates across levels into one `group` and one
    // `coarsen` span per solve; the clock is only read when recording is on.
    let observing = orwl_obs::enabled();
    let mut group_ns = 0u64;
    let mut coarsen_ns = 0u64;
    for l in (0..levels).rev() {
        let t0 = observing.then(std::time::Instant::now);
        let groups = group_processes_with(&scratch.cur, arities[l], &mut scratch.grouping);
        let t1 = observing.then(std::time::Instant::now);
        aggregate_into(&scratch.cur, &groups, &mut scratch.agg, &mut scratch.next);
        if let (Some(t0), Some(t1)) = (t0, t1) {
            group_ns += (t1 - t0).as_nanos() as u64;
            coarsen_ns += t1.elapsed().as_nanos() as u64;
        }
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
        partitions.push(groups);
    }
    if observing {
        orwl_obs::solve_phase_ns(orwl_obs::SolvePhase::Group, group_ns);
        orwl_obs::solve_phase_ns(orwl_obs::SolvePhase::Coarsen, coarsen_ns);
    }

    // Line 8 (MapGroups): walk the hierarchy of groups top-down, assigning
    // each group a leaf slot aligned on subtree boundaries so that a group
    // never straddles two parents.
    //
    // `width[s]` = number of (virtual) leaves spanned by one stage-`s`
    // entity: a stage-0 entity is an original thread (width 1), a stage-1
    // entity is a bottom-level group (width = deepest arity), and so on.
    let mut width = vec![1usize; levels + 1];
    for s in 1..=levels {
        width[s] = width[s - 1] * arities[levels - s];
    }

    let mut virtual_leaf = vec![0usize; p];
    // The top stage has exactly one group (guaranteed by the ceil-chain of
    // group counts); iterate defensively anyway.
    let top = partitions.len() - 1;
    for (g, _) in partitions[top].iter().enumerate() {
        assign_rec(&partitions, top + 1, g, g * width[levels], &width, &mut virtual_leaf);
    }

    // Fold virtual leaves back onto physical leaves.
    virtual_leaf.into_iter().map(|v| plan.physical_leaf(v)).collect()
}

/// Recursive slot assignment: stage-`stage` entity `entity` occupies the
/// leaf range starting at `base`.
fn assign_rec(
    partitions: &[Groups],
    stage: usize,
    entity: usize,
    base: usize,
    width: &[usize],
    out: &mut Vec<usize>,
) {
    if stage == 0 {
        out[entity] = base;
        return;
    }
    let members = &partitions[stage - 1][entity];
    for (i, &member) in members.iter().enumerate() {
        assign_rec(partitions, stage - 1, member, base + i * width[stage - 1], width, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::metrics::{hop_bytes, mapping_cost_default};
    use orwl_comm::patterns;
    use orwl_topo::synthetic;

    #[test]
    fn assign_respects_subtree_alignment() {
        // Chain of 6 on a 2×4 = 8-leaf tree: pairs must stay in the same
        // subtree of 4 and adjacent pairs should share it when possible.
        let shape = TreeShape::new(vec![2, 4]);
        let m = patterns::chain(6, 10.0);
        let leaves = tree_match_assign(&shape, &m);
        assert_eq!(leaves.len(), 6);
        // All leaves are within range and distinct (no oversubscription).
        let mut sorted = leaves.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert!(leaves.iter().all(|&l| l < 8));
        // Threads 0 and 1 (heavily communicating chain neighbours) share the
        // 4-leaf subtree.
        assert_eq!(leaves[0] / 4, leaves[1] / 4);
    }

    #[test]
    fn assign_handles_oversubscription() {
        // 8 entities on a 4-leaf tree: each leaf hosts exactly 2 entities.
        let shape = TreeShape::new(vec![2, 2]);
        let m = patterns::chain(8, 1.0);
        let leaves = tree_match_assign(&shape, &m);
        assert_eq!(leaves.len(), 8);
        assert!(leaves.iter().all(|&l| l < 4));
        let mut counts = [0usize; 4];
        for &l in &leaves {
            counts[l] += 1;
        }
        assert_eq!(counts, [2, 2, 2, 2]);
    }

    #[test]
    fn assign_empty_and_degenerate() {
        assert!(tree_match_assign(&TreeShape::new(vec![2, 2]), &CommMatrix::zeros(0)).is_empty());
        let flat = tree_match_assign(&TreeShape::new(vec![]), &patterns::chain(3, 1.0));
        assert_eq!(flat, vec![0, 0, 0]);
    }

    #[test]
    fn treematch_beats_scatter_on_clustered_matrix() {
        let topo = synthetic::cluster2016_subset(4).unwrap(); // 4 sockets × 8 cores
        let m = patterns::clustered(4, 8, 1000.0, 1.0);
        let placement = TreeMatchMapper::compute_only().compute_placement(&topo, &m);
        assert_eq!(placement.n_compute(), 32);
        assert!(placement.is_injective());
        placement.validate_against(&topo).unwrap();
        let tm = placement.compute_mapping_or_zero();

        // Scatter round-robin over sockets: the worst thing one can do here.
        let scatter: Vec<usize> = (0..32).map(|t| (t % 4) * 8 + t / 4).collect();
        assert!(mapping_cost_default(&m, &topo, &tm) < mapping_cost_default(&m, &topo, &scatter));
        assert!(hop_bytes(&m, &topo, &tm) < hop_bytes(&m, &topo, &scatter));
    }

    #[test]
    fn treematch_keeps_clusters_on_one_socket() {
        let topo = synthetic::cluster2016_subset(4).unwrap();
        let m = patterns::clustered(4, 8, 1000.0, 1.0);
        let placement = TreeMatchMapper::compute_only().compute_placement(&topo, &m);
        let mapping = placement.compute_mapping_or_zero();
        // Every cluster of 8 threads must land on a single socket (8 cores
        // per socket, intra-cluster volume dominates).
        for c in 0..4 {
            let sockets: std::collections::HashSet<usize> = (0..8).map(|i| mapping[c * 8 + i] / 8).collect();
            assert_eq!(sockets.len(), 1, "cluster {c} spread over sockets {sockets:?}");
        }
    }

    #[test]
    fn stencil_placement_quality_on_paper_machine() {
        // 8×8 stencil tasks on two sockets: TreeMatch must do at least as
        // well as the naive packed placement and better than scatter.
        let topo = synthetic::cluster2016_subset(8).unwrap(); // 64 cores
        let spec = patterns::StencilSpec::nine_point_blocks(8, 2048, 8);
        let m = patterns::stencil_2d(&spec);
        let placement = TreeMatchMapper::compute_only().compute_placement(&topo, &m);
        let tm = placement.compute_mapping_or_zero();
        let packed: Vec<usize> = (0..64).collect();
        let scatter: Vec<usize> = (0..64).map(|t| (t % 8) * 8 + t / 8).collect();
        let cost_tm = mapping_cost_default(&m, &topo, &tm);
        let cost_packed = mapping_cost_default(&m, &topo, &packed);
        let cost_scatter = mapping_cost_default(&m, &topo, &scatter);
        assert!(cost_tm <= cost_packed * 1.05, "tm={cost_tm} packed={cost_packed}");
        assert!(cost_tm < cost_scatter, "tm={cost_tm} scatter={cost_scatter}");
    }

    #[test]
    fn hyperthread_reserve_places_control_on_siblings() {
        let topo = synthetic::dual_socket_smt(); // 32 cores × 2 PUs
        let m = patterns::clustered(4, 8, 100.0, 1.0); // 32 compute threads
        let mapper = TreeMatchMapper::new(TreeMatchConfig {
            control: ControlThreadSpec { count: 4, affinity_fraction: 0.2 },
        });
        let placement = mapper.compute_placement(&topo, &m);
        assert_eq!(placement.n_compute(), 32);
        assert_eq!(placement.n_control(), 4);
        placement.validate_against(&topo).unwrap();
        // Every compute thread is on the first hyperthread of its core
        // (even PU index on this topology), every control thread on a
        // second hyperthread (odd index).
        for pu in placement.compute.iter().flatten() {
            assert_eq!(pu % 2, 0, "compute thread on reserved hyperthread {pu}");
        }
        for pu in placement.control.iter().flatten() {
            assert_eq!(pu % 2, 1, "control thread on a compute hyperthread {pu}");
        }
        assert!(placement.is_injective());
    }

    #[test]
    fn spare_core_mode_binds_control_threads() {
        let topo = synthetic::cluster2016_subset(2).unwrap(); // 16 cores, no SMT
        let m = patterns::clustered(2, 4, 100.0, 1.0); // 8 compute threads
        let mapper = TreeMatchMapper::new(TreeMatchConfig {
            control: ControlThreadSpec { count: 2, affinity_fraction: 0.2 },
        });
        let placement = mapper.compute_placement(&topo, &m);
        assert_eq!(placement.control.len(), 2);
        assert!(placement.control.iter().all(Option::is_some));
        // Control threads must not steal a compute thread's core.
        let compute_set: std::collections::HashSet<usize> =
            placement.compute.iter().flatten().copied().collect();
        for pu in placement.control.iter().flatten() {
            assert!(!compute_set.contains(pu), "control thread shares PU {pu} with a compute thread");
        }
    }

    #[test]
    fn unmapped_mode_leaves_control_to_os() {
        let topo = synthetic::cluster2016_subset(1).unwrap(); // 8 cores
        let m = patterns::all_to_all(8, 10.0); // saturates the socket
        let mapper = TreeMatchMapper::new(TreeMatchConfig {
            control: ControlThreadSpec { count: 2, affinity_fraction: 0.2 },
        });
        let placement = mapper.compute_placement(&topo, &m);
        assert!(placement.compute.iter().all(Option::is_some));
        assert_eq!(placement.control, vec![None, None]);
    }

    #[test]
    fn empty_matrix_gives_unbound_placement() {
        let topo = synthetic::laptop();
        let placement = TreeMatchMapper::default().compute_placement(&topo, &CommMatrix::zeros(0));
        assert_eq!(placement.n_compute(), 0);
    }

    #[test]
    fn oversubscribed_workload_is_balanced_over_pus() {
        let topo = synthetic::cluster2016_subset(1).unwrap(); // 8 cores
        let m = patterns::chain(24, 10.0); // 3 threads per core
        let placement = TreeMatchMapper::compute_only().compute_placement(&topo, &m);
        let mapping = placement.compute_mapping_or_zero();
        let mut counts = std::collections::HashMap::new();
        for pu in &mapping {
            *counts.entry(*pu).or_insert(0usize) += 1;
        }
        // Every PU hosts exactly 3 threads.
        assert_eq!(counts.len(), 8);
        assert!(counts.values().all(|&c| c == 3), "unbalanced oversubscription: {counts:?}");
    }
}
