//! The `manage_oversubscription` step of Algorithm 1.
//!
//! The placement algorithm assigns one communicating entity per leaf of the
//! topology tree.  When the application creates more threads than there are
//! processing units, the paper's extension adds a virtual level below the
//! leaves so that the tree has enough (virtual) resources; several threads
//! then end up mapped to the same physical PU.

use orwl_topo::topology::TreeShape;

/// Result of the oversubscription analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OversubPlan {
    /// The (possibly extended) tree shape the grouping loop should use.
    pub shape: TreeShape,
    /// Number of virtual leaves attached below each physical leaf
    /// (1 = no oversubscription).
    pub factor: usize,
}

impl OversubPlan {
    /// True when an extra virtual level was added.
    pub fn is_oversubscribed(&self) -> bool {
        self.factor > 1
    }

    /// Maps a virtual leaf index (0-based, left-to-right over the extended
    /// tree) back to the physical leaf index it lives under.
    pub fn physical_leaf(&self, virtual_leaf: usize) -> usize {
        virtual_leaf / self.factor
    }
}

/// Compares the number of entities to place with the number of leaves and,
/// when needed, extends the tree with a virtual level so that
/// `shape.leaves() >= entities` (the paper's step 2).
///
/// # Panics
/// Panics when `entities == 0` would make the plan meaningless — the caller
/// (Algorithm 1) never invokes it with an empty matrix.
pub fn manage_oversubscription(shape: &TreeShape, entities: usize) -> OversubPlan {
    assert!(entities > 0, "cannot plan a placement for zero entities");
    let leaves = shape.leaves();
    if entities <= leaves {
        return OversubPlan { shape: shape.clone(), factor: 1 };
    }
    let factor = entities.div_ceil(leaves);
    OversubPlan { shape: shape.with_extra_level(factor), factor }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_extension_when_entities_fit() {
        let shape = TreeShape::new(vec![2, 4]); // 8 leaves
        let plan = manage_oversubscription(&shape, 8);
        assert_eq!(plan.factor, 1);
        assert!(!plan.is_oversubscribed());
        assert_eq!(plan.shape, shape);
        assert_eq!(plan.physical_leaf(5), 5);

        let plan_small = manage_oversubscription(&shape, 3);
        assert_eq!(plan_small.factor, 1);
    }

    #[test]
    fn extension_factor_is_ceiling() {
        let shape = TreeShape::new(vec![2, 4]); // 8 leaves
                                                // 9..16 entities need factor 2, 17..24 need factor 3.
        let plan9 = manage_oversubscription(&shape, 9);
        assert_eq!(plan9.factor, 2);
        assert!(plan9.is_oversubscribed());
        assert_eq!(plan9.shape.leaves(), 16);
        assert_eq!(plan9.shape.arities, vec![2, 4, 2]);

        let plan17 = manage_oversubscription(&shape, 17);
        assert_eq!(plan17.factor, 3);
        assert_eq!(plan17.shape.leaves(), 24);
    }

    #[test]
    fn virtual_to_physical_leaf_mapping() {
        let shape = TreeShape::new(vec![4]); // 4 leaves
        let plan = manage_oversubscription(&shape, 8); // factor 2
        assert_eq!(plan.physical_leaf(0), 0);
        assert_eq!(plan.physical_leaf(1), 0);
        assert_eq!(plan.physical_leaf(2), 1);
        assert_eq!(plan.physical_leaf(7), 3);
    }

    #[test]
    fn exact_multiple_boundary() {
        let shape = TreeShape::new(vec![4]); // 4 leaves
        assert_eq!(manage_oversubscription(&shape, 4).factor, 1);
        assert_eq!(manage_oversubscription(&shape, 5).factor, 2);
        assert_eq!(manage_oversubscription(&shape, 8).factor, 2);
        assert_eq!(manage_oversubscription(&shape, 9).factor, 3);
    }

    #[test]
    #[should_panic]
    fn zero_entities_panics() {
        manage_oversubscription(&TreeShape::new(vec![2]), 0);
    }
}
