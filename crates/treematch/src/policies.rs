//! Baseline placement policies.
//!
//! The paper compares its topology-aware placement ("ORWL Bind") against an
//! unbound ORWL run and against OpenMP's default behaviour.  These policies
//! model those baselines — plus the classic `packed`/`scatter`/`random`
//! bindings found in batch schedulers — behind one enum so benchmarks can
//! sweep over them.

use crate::algorithm::{TreeMatchConfig, TreeMatchMapper};
use crate::control::ControlThreadSpec;
use crate::mapping::Placement;
use orwl_comm::matrix::CommMatrix;
use orwl_topo::object::ObjectType;
use orwl_topo::topology::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A thread-placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// No binding at all: every thread is left to the OS scheduler.  This is
    /// the paper's "ORWL NoBind" configuration (and how the OpenMP baseline
    /// ran).
    NoBind,
    /// Threads fill PUs in topology order: thread 0 → PU 0, thread 1 → PU 1…
    /// Consecutive threads share caches and sockets (compact placement).
    Packed,
    /// Threads are distributed round-robin over NUMA nodes, then packed
    /// inside each node (OpenMP's `spread`/ SLURM's cyclic distribution).
    Scatter,
    /// Threads are bound to PUs chosen by a seeded random permutation.
    Random(u64),
    /// The topology-aware placement of the paper (Algorithm 1).
    TreeMatch,
    /// Two-level cluster placement: partition the tasks over the topology's
    /// depth-1 subtrees (the per-node `Group`s of a flattened
    /// [`ClusterTopology`](orwl_topo::cluster::ClusterTopology), or the
    /// NUMA/package level of a single machine) minimising the inter-subtree
    /// cut ([`mod@crate::partition`]), then run TreeMatch *inside* each subtree.
    /// Falls back to plain TreeMatch when the topology has no level to
    /// partition over.
    Hierarchical,
}

impl Policy {
    /// Short machine-friendly name (used in benchmark CSV output).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::NoBind => "nobind",
            Policy::Packed => "packed",
            Policy::Scatter => "scatter",
            Policy::Random(_) => "random",
            Policy::TreeMatch => "treematch",
            Policy::Hierarchical => "hierarchical",
        }
    }

    /// All policies with default parameters, for sweeps.
    pub fn all() -> Vec<Policy> {
        vec![
            Policy::NoBind,
            Policy::Packed,
            Policy::Scatter,
            Policy::Random(0xC0FFEE),
            Policy::TreeMatch,
            Policy::Hierarchical,
        ]
    }
}

/// Computes a placement of `n_compute` threads (whose communication matrix
/// is `m`) and `n_control` control threads on `topo` according to `policy`.
///
/// Only [`Policy::TreeMatch`] uses the communication matrix and binds control
/// threads; the baselines ignore both (mirroring what non-topology-aware
/// runtimes actually do).
pub fn compute_placement(policy: Policy, topo: &Topology, m: &CommMatrix, n_control: usize) -> Placement {
    // Observability: every placement solve — initial or re-placement, any
    // policy — is one `total` solve span (no-op when recording is off).
    orwl_obs::time_phase(orwl_obs::SolvePhase::Total, || compute_placement_inner(policy, topo, m, n_control))
}

fn compute_placement_inner(policy: Policy, topo: &Topology, m: &CommMatrix, n_control: usize) -> Placement {
    let n_compute = m.order();
    match policy {
        Policy::NoBind => Placement::unbound(n_compute, n_control),
        Policy::Packed => {
            let pus = topo.pu_os_indices();
            let compute = (0..n_compute).map(|t| Some(pus[t % pus.len()])).collect();
            Placement { compute, control: vec![None; n_control] }
        }
        Policy::Scatter => {
            let compute = scatter_mapping(topo, n_compute).into_iter().map(Some).collect();
            Placement { compute, control: vec![None; n_control] }
        }
        Policy::Random(seed) => {
            let mut pus = topo.pu_os_indices();
            let mut rng = StdRng::seed_from_u64(seed);
            pus.shuffle(&mut rng);
            let compute = (0..n_compute).map(|t| Some(pus[t % pus.len()])).collect();
            Placement { compute, control: vec![None; n_control] }
        }
        Policy::TreeMatch => {
            let mapper =
                TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(n_control) });
            mapper.compute_placement(topo, m)
        }
        Policy::Hierarchical => hierarchical_placement(topo, m, n_control),
    }
}

/// Two-level placement on a flat topology: partition the tasks over the
/// depth-1 subtrees, then TreeMatch each part on the subtree's own shape.
///
/// The partition level is the synthetic spec's first level — the per-node
/// `Group` of a flattened cluster, or the NUMA/package level of a single
/// machine.  Control threads are left to the OS (`None`): at cluster scale
/// each node runs its own control threads, a concern of the backend rather
/// than of the global placement.
fn hierarchical_placement(topo: &Topology, m: &CommMatrix, n_control: usize) -> Placement {
    let spec = topo.level_spec();
    let n_compute = m.order();
    if n_compute == 0 {
        return Placement::unbound(0, n_control);
    }
    // No level to partition over (discovered topology or a single-level
    // spec): two-level placement degenerates to plain TreeMatch.
    if spec.len() < 2 {
        let placement = TreeMatchMapper::compute_only().compute_placement(topo, m);
        return Placement { compute: placement.compute, control: vec![None; n_control] };
    }
    let n_parts = spec[0].count;
    let sub_levels = &spec[1..];
    let pus_per_part: usize = sub_levels.iter().map(|l| l.count).product();
    // Oversubscription beyond the whole machine: relax the per-part
    // capacity so every task still gets a slot (TreeMatch then stacks
    // tasks inside the part, exactly like the flat oversubscription path).
    let capacity = pus_per_part.max(n_compute.div_ceil(n_parts));

    let assignment = crate::partition::partition(m, &crate::partition::PartCosts::uniform(n_parts), capacity)
        .expect("capacity is relaxed to ceil(tasks/parts), which always fits");

    // Synthetic subtrees own contiguous PU ranges in global order.
    let sub_topo = Topology::from_levels("subtree", sub_levels)
        .expect("levels below a valid topology's first level are a valid topology");
    let compute = crate::partition::treematch_within_parts(&sub_topo, m, &assignment, n_parts, pus_per_part);
    Placement { compute, control: vec![None; n_control] }
}

/// Round-robin over NUMA nodes (falling back to packages, then to the whole
/// machine), packing threads inside each node in PU order.
fn scatter_mapping(topo: &Topology, n_compute: usize) -> Vec<usize> {
    let nodes = {
        let numa = topo.objects_of_type(ObjectType::NumaNode);
        if !numa.is_empty() {
            numa
        } else {
            let pkg = topo.objects_of_type(ObjectType::Package);
            if !pkg.is_empty() {
                pkg
            } else {
                vec![topo.root()]
            }
        }
    };
    let per_node_pus: Vec<Vec<usize>> = nodes.iter().map(|n| n.cpuset.to_vec()).collect();
    let mut cursor = vec![0usize; nodes.len()];
    let mut out = Vec::with_capacity(n_compute);
    for t in 0..n_compute {
        let node = t % nodes.len();
        let pus = &per_node_pus[node];
        let pu = pus[cursor[node] % pus.len()];
        cursor[node] += 1;
        out.push(pu);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orwl_comm::metrics::mapping_cost_default;
    use orwl_comm::patterns;
    use orwl_topo::synthetic;

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<&str> = Policy::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), Policy::all().len());
    }

    #[test]
    fn nobind_binds_nothing() {
        let topo = synthetic::laptop();
        let m = patterns::chain(4, 1.0);
        let p = compute_placement(Policy::NoBind, &topo, &m, 2);
        assert_eq!(p.bound_fraction(), 0.0);
        assert_eq!(p.n_control(), 2);
    }

    #[test]
    fn packed_fills_pus_in_order() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let m = patterns::chain(6, 1.0);
        let p = compute_placement(Policy::Packed, &topo, &m, 0);
        assert_eq!(p.compute, (0..6).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn packed_wraps_around_under_oversubscription() {
        let topo = synthetic::cluster2016_subset(1).unwrap(); // 8 PUs
        let m = patterns::chain(10, 1.0);
        let p = compute_placement(Policy::Packed, &topo, &m, 0);
        assert_eq!(p.compute[8], Some(0));
        assert_eq!(p.compute[9], Some(1));
    }

    #[test]
    fn scatter_round_robins_over_sockets() {
        let topo = synthetic::cluster2016_subset(4).unwrap(); // 4 sockets × 8 cores
        let m = patterns::chain(8, 1.0);
        let p = compute_placement(Policy::Scatter, &topo, &m, 0);
        // Threads 0..4 land on sockets 0..4, thread 4 back on socket 0.
        let sockets: Vec<usize> = p.compute.iter().map(|pu| pu.unwrap() / 8).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Second thread on a socket uses the next core of that socket.
        assert_eq!(p.compute[4], Some(1));
        assert_eq!(p.numa_nodes_used(&topo), 4);
    }

    #[test]
    fn scatter_falls_back_without_numa_level() {
        let topo = synthetic::laptop(); // no NUMA, one package
        let m = patterns::chain(4, 1.0);
        let p = compute_placement(Policy::Scatter, &topo, &m, 0);
        assert!(p.compute.iter().all(Option::is_some));
        p.validate_against(&topo).unwrap();
    }

    #[test]
    fn random_is_seeded_and_valid() {
        let topo = synthetic::cluster2016_subset(2).unwrap();
        let m = patterns::chain(16, 1.0);
        let a = compute_placement(Policy::Random(7), &topo, &m, 0);
        let b = compute_placement(Policy::Random(7), &topo, &m, 0);
        let c = compute_placement(Policy::Random(8), &topo, &m, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        a.validate_against(&topo).unwrap();
        assert!(a.is_injective());
    }

    #[test]
    fn treematch_policy_beats_baselines_on_clustered_workload() {
        let topo = synthetic::cluster2016_subset(4).unwrap();
        let m = patterns::clustered(4, 8, 1000.0, 1.0);
        let tm = compute_placement(Policy::TreeMatch, &topo, &m, 0);
        let tm_cost = mapping_cost_default(&m, &topo, &tm.compute_mapping_or_zero());
        for baseline in [Policy::Scatter, Policy::Random(123)] {
            let p = compute_placement(baseline, &topo, &m, 0);
            let cost = mapping_cost_default(&m, &topo, &p.compute_mapping_or_zero());
            assert!(tm_cost <= cost, "treematch ({tm_cost}) should beat {} ({cost})", baseline.name());
        }
    }

    #[test]
    fn hierarchical_keeps_clusters_inside_numa_subtrees() {
        let topo = synthetic::cluster2016_subset(4).unwrap(); // 4 sockets × 8 cores
        let m = patterns::clustered(4, 8, 1000.0, 1.0);
        let p = compute_placement(Policy::Hierarchical, &topo, &m, 0);
        p.validate_against(&topo).unwrap();
        assert!(p.is_injective());
        // Every heavy cluster of 8 lands on a single socket.
        let mapping = p.compute_mapping_or_zero();
        for c in 0..4 {
            let sockets: std::collections::HashSet<usize> = (0..8).map(|i| mapping[c * 8 + i] / 8).collect();
            assert_eq!(sockets.len(), 1, "cluster {c} spread over sockets {sockets:?}");
        }
        // And matches or beats flat TreeMatch on the locality metric.
        let tm = compute_placement(Policy::TreeMatch, &topo, &m, 0);
        let h_cost = mapping_cost_default(&m, &topo, &mapping);
        let tm_cost = mapping_cost_default(&m, &topo, &tm.compute_mapping_or_zero());
        assert!(h_cost <= tm_cost + 1e-9, "hierarchical {h_cost} vs treematch {tm_cost}");
    }

    #[test]
    fn hierarchical_handles_oversubscription_and_degenerate_topologies() {
        // More tasks than PUs: 24 tasks on 8 PUs.
        let topo = synthetic::cluster2016_subset(1).unwrap();
        let m = patterns::chain(24, 10.0);
        let p = compute_placement(Policy::Hierarchical, &topo, &m, 0);
        p.validate_against(&topo).unwrap();
        assert!(p.compute.iter().all(Option::is_some));
        // Degenerate single-level spec falls back to TreeMatch.
        let flat = orwl_topo::topology::Topology::from_levels(
            "flat",
            &[orwl_topo::topology::LevelSpec::new(orwl_topo::object::ObjectType::PU, 4)],
        )
        .unwrap();
        let p = compute_placement(Policy::Hierarchical, &flat, &patterns::chain(4, 1.0), 1);
        p.validate_against(&flat).unwrap();
        assert_eq!(p.n_control(), 1);
    }

    #[test]
    fn all_policies_produce_valid_placements() {
        let topo = synthetic::dual_socket_smt();
        let m = patterns::stencil_2d(&patterns::StencilSpec {
            rows: 4,
            cols: 4,
            edge_volume: 64.0,
            corner_volume: 1.0,
        });
        for policy in Policy::all() {
            let p = compute_placement(policy, &topo, &m, 2);
            assert_eq!(p.n_compute(), 16, "{}", policy.name());
            p.validate_against(&topo).unwrap();
        }
    }
}
