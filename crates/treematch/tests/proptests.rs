//! Property-based tests for the placement algorithm: structural guarantees
//! of grouping and mapping, and the core quality claim (TreeMatch never does
//! worse than random placement on clustered workloads).

use orwl_comm::matrix::CommMatrix;
use orwl_comm::metrics::mapping_cost_default;
use orwl_comm::patterns;
use orwl_topo::synthetic;
use orwl_topo::topology::TreeShape;
use orwl_treematch::grouping::group_processes;
use orwl_treematch::oversub::manage_oversubscription;
use orwl_treematch::policies::{compute_placement, Policy};
use orwl_treematch::tree_match_assign;
use proptest::prelude::*;

/// Strategy producing small random symmetric matrices.
fn matrix_strategy() -> impl Strategy<Value = CommMatrix> {
    (2usize..20, 0u64..1000).prop_map(|(n, seed)| patterns::random_symmetric(n, 0.5, 100.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grouping_is_a_partition(m in matrix_strategy(), arity in 1usize..6) {
        let groups = group_processes(&m, arity);
        prop_assert_eq!(groups.len(), m.order().div_ceil(arity));
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..m.order()).collect::<Vec<_>>());
        prop_assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= arity));
    }

    #[test]
    fn oversubscription_always_fits(entities in 1usize..200, a1 in 1usize..5, a2 in 1usize..5) {
        let shape = TreeShape::new(vec![a1, a2]);
        let plan = manage_oversubscription(&shape, entities);
        prop_assert!(plan.shape.leaves() >= entities);
        // The factor is minimal: one less would not fit (unless factor is 1).
        if plan.factor > 1 {
            prop_assert!(shape.leaves() * (plan.factor - 1) < entities);
        }
        // Virtual leaves map onto valid physical leaves.
        for v in 0..plan.shape.leaves() {
            prop_assert!(plan.physical_leaf(v) < shape.leaves());
        }
    }

    #[test]
    fn assignment_targets_valid_leaves(m in matrix_strategy(), a1 in 1usize..4, a2 in 1usize..4, a3 in 1usize..4) {
        let shape = TreeShape::new(vec![a1, a2, a3]);
        let leaves = tree_match_assign(&shape, &m);
        prop_assert_eq!(leaves.len(), m.order());
        prop_assert!(leaves.iter().all(|&l| l < shape.leaves()));
        // Load balance under oversubscription: no leaf gets more than
        // ceil(entities / leaves) + small slack from alignment padding.
        let cap = m.order().div_ceil(shape.leaves());
        let mut counts = vec![0usize; shape.leaves()];
        for &l in &leaves {
            counts[l] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c <= cap.max(1) * a3.max(1)),
            "counts={counts:?} cap={cap}");
    }

    #[test]
    fn assignment_without_oversubscription_is_injective(seed in 0u64..500, n in 2usize..16) {
        let m = patterns::random_symmetric(n, 0.6, 50.0, seed);
        let shape = TreeShape::new(vec![4, 4]); // 16 leaves ≥ n
        let leaves = tree_match_assign(&shape, &m);
        let mut uniq = leaves.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), n);
    }

    #[test]
    fn treematch_not_worse_than_random_on_clustered(groups in 2usize..5, seed in 0u64..100) {
        let topo = synthetic::cluster2016_subset(groups).unwrap();
        let m = patterns::clustered(groups, 8, 500.0, 1.0);
        let tm = compute_placement(Policy::TreeMatch, &topo, &m, 0);
        let rnd = compute_placement(Policy::Random(seed), &topo, &m, 0);
        let tm_cost = mapping_cost_default(&m, &topo, &tm.compute_mapping_or_zero());
        let rnd_cost = mapping_cost_default(&m, &topo, &rnd.compute_mapping_or_zero());
        prop_assert!(tm_cost <= rnd_cost + 1e-9, "tm={tm_cost} rnd={rnd_cost}");
    }

    #[test]
    fn placements_are_always_valid(n in 1usize..40, ctl in 0usize..4, seed in 0u64..50) {
        let topo = synthetic::dual_socket_smt();
        let m = patterns::random_symmetric(n, 0.4, 100.0, seed);
        for policy in [Policy::Packed, Policy::Scatter, Policy::Random(seed), Policy::TreeMatch] {
            let p = compute_placement(policy, &topo, &m, ctl);
            prop_assert_eq!(p.n_compute(), n);
            prop_assert_eq!(p.n_control(), ctl);
            prop_assert!(p.validate_against(&topo).is_ok());
        }
    }
}
