//! Golden pins of the `Session` simulator backend on the rotating-sweep
//! workload.
//!
//! The backend was originally pinned bit-for-bit against the legacy
//! `run_static` / `run_adaptive` / `run_oracle` harness; with that trio
//! deleted, these constants (captured from the pinned implementation) are
//! the remaining safety net: a change to the simulator, the TreeMatch
//! mapper or the adaptive engine that shifts the evaluation numbers fails
//! here instead of silently re-baselining every experiment.

use orwl_adapt::backend::SimBackend;
use orwl_adapt::drift::DriftConfig;
use orwl_adapt::engine::AdaptConfig;
use orwl_adapt::replace::{MigrationCostModel, ReplacerConfig};
use orwl_core::prelude::*;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;

const EPOCH_ITERATIONS: usize = 4;

fn machine() -> SimMachine {
    SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
}

fn workload(phases: &[usize]) -> PhasedWorkload {
    PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, phases)
}

fn session(mode: Mode) -> Session {
    // The evaluation tuning, spelled out rather than taken from
    // `AdaptConfig::evaluation()` so a drive-by change to that preset
    // cannot silently re-baseline the pins.
    let adapt = AdaptConfig {
        decay: 0.2,
        drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 131072.0 },
            horizon_epochs: 20.0,
            min_relative_gain: 0.05,
        },
    };
    Session::builder()
        .topology(machine().topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .mode(mode)
        .backend(SimBackend::new(machine()).with_adapt_config(adapt))
        .build()
        .unwrap()
}

/// Relative-tolerance pin: tight enough that any behavioural change trips
/// it, loose enough to survive benign float-formatting differences.
fn pin(actual: f64, golden: f64, what: &str) {
    let rel = (actual - golden).abs() / golden.abs().max(1e-300);
    assert!(rel < 1e-6, "{what}: {actual:.9e} drifted from golden {golden:.9e} (rel {rel:.3e})");
}

#[test]
fn static_mode_matches_the_golden_baseline() {
    let report = session(Mode::Static).run(workload(&[24, 200])).unwrap();
    pin(report.hop_bytes, 2.067825e9, "static hop-bytes");
    pin(report.time.seconds(), 2.529165312e-2, "static simulated time");
    assert!(report.adapt.is_none());
}

#[test]
fn oracle_mode_matches_the_golden_baseline() {
    let report = session(Mode::Oracle).run(workload(&[24, 200])).unwrap();
    pin(report.hop_bytes, 1.448509e9, "oracle hop-bytes");
    pin(report.time.seconds(), 1.585446912e-2, "oracle simulated time");
}

#[test]
fn adaptive_mode_matches_the_golden_baseline() {
    let report = session(Mode::Adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS)))
        .run(workload(&[24, 200]))
        .unwrap();
    pin(report.hop_bytes, 1.473479e9, "adaptive hop-bytes");
    pin(report.time.seconds(), 1.616904192e-2, "adaptive simulated time");
    let adapt = report.adapt.expect("adaptive sessions report counters");
    assert_eq!(adapt.replacements, 1, "exactly one migration at the phase boundary");
    assert_eq!(adapt.drift_deltas.len(), 56, "one delta per warmed-up epoch");
}

#[test]
fn golden_pins_hold_across_workload_shapes() {
    // (phases, static hop, oracle hop, adaptive hop, migrations)
    let golden: [(&[usize], f64, f64, f64, u64); 2] = [
        (&[40], 2.586624e8, 2.586624e8, 2.586624e8, 0),
        (&[16, 16, 60], 6.444687e8, 5.949235e8, 6.696346e8, 2),
    ];
    for (phases, g_static, g_oracle, g_adaptive, migrations) in golden {
        let w = workload(phases);
        let s = session(Mode::Static).run(w.clone()).unwrap();
        let o = session(Mode::Oracle).run(w.clone()).unwrap();
        let a = session(Mode::Adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS))).run(w).unwrap();
        pin(s.hop_bytes, g_static, &format!("static hop-bytes, phases {phases:?}"));
        pin(o.hop_bytes, g_oracle, &format!("oracle hop-bytes, phases {phases:?}"));
        pin(a.hop_bytes, g_adaptive, &format!("adaptive hop-bytes, phases {phases:?}"));
        assert_eq!(a.adapt.unwrap().replacements, migrations, "phases {phases:?}");
        // The oracle stays the unbeatable lower bound of the trio.
        assert!(o.hop_bytes <= s.hop_bytes + 1e-9);
        assert!(o.hop_bytes <= a.hop_bytes + 1e-9);
        // A single-phase workload never migrates: the three modes coincide.
        if phases.len() == 1 {
            assert_eq!(s.hop_bytes, o.hop_bytes);
            assert_eq!(s.hop_bytes, a.hop_bytes);
        }
    }
}
