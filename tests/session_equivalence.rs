//! Golden equivalence: the `Session` simulator backend must reproduce the
//! legacy `run_static` / `run_adaptive` / `run_oracle` harness **to the
//! bit** on the rotating-sweep workload, for hop-bytes, simulated time and
//! migration counts.  This is the safety net that lets the deprecated trio
//! be deleted later without silently changing the evaluation.

#![allow(deprecated)]

use orwl_adapt::backend::SimBackend;
use orwl_adapt::drift::DriftConfig;
use orwl_adapt::engine::AdaptConfig;
use orwl_adapt::replace::{MigrationCostModel, ReplacerConfig};
use orwl_adapt::sim::{run_adaptive, run_oracle, run_static, SimAdaptConfig};
use orwl_core::prelude::*;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;

const EPOCH_ITERATIONS: usize = 4;

fn machine() -> SimMachine {
    SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016())
}

fn workload() -> PhasedWorkload {
    PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200])
}

fn legacy_config() -> SimAdaptConfig {
    SimAdaptConfig {
        epoch_iterations: EPOCH_ITERATIONS,
        decay: 0.2,
        drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 131072.0 },
            horizon_epochs: 20.0,
            min_relative_gain: 0.05,
        },
    }
}

fn session(mode: Mode) -> Session {
    let legacy = legacy_config();
    let adapt = AdaptConfig { decay: legacy.decay, drift: legacy.drift, replacer: legacy.replacer };
    Session::builder()
        .topology(machine().topology().clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .mode(mode)
        .backend(SimBackend::new(machine()).with_adapt_config(adapt))
        .build()
        .unwrap()
}

#[test]
fn static_mode_reproduces_run_static_exactly() {
    let old = run_static(&machine(), &workload());
    let new = session(Mode::Static).run(workload()).unwrap();
    assert_eq!(new.hop_bytes, old.cumulative_hop_bytes, "hop-bytes must be bit-identical");
    assert_eq!(new.time.seconds(), old.total_time, "simulated time must be bit-identical");
    assert!(new.adapt.is_none());
}

#[test]
fn oracle_mode_reproduces_run_oracle_exactly() {
    let old = run_oracle(&machine(), &workload());
    let new = session(Mode::Oracle).run(workload()).unwrap();
    assert_eq!(new.hop_bytes, old.cumulative_hop_bytes, "hop-bytes must be bit-identical");
    assert_eq!(new.time.seconds(), old.total_time, "simulated time must be bit-identical");
}

#[test]
fn adaptive_mode_reproduces_run_adaptive_exactly() {
    let old = run_adaptive(&machine(), &workload(), &legacy_config());
    let new =
        session(Mode::Adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS))).run(workload()).unwrap();
    assert_eq!(new.hop_bytes, old.cumulative_hop_bytes, "hop-bytes must be bit-identical");
    assert_eq!(new.time.seconds(), old.total_time, "simulated time must be bit-identical");
    let adapt = new.adapt.expect("adaptive sessions report counters");
    assert_eq!(adapt.replacements as usize, old.migrations);
    assert_eq!(adapt.drift_deltas, old.drift_deltas, "per-epoch drift deltas must match");
}

#[test]
fn equivalence_holds_across_workload_shapes() {
    // A single-phase and a three-phase workload, pinned the same way.
    for phases in [vec![40usize], vec![16, 16, 60]] {
        let w = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &phases);
        let old_static = run_static(&machine(), &w);
        let old_oracle = run_oracle(&machine(), &w);
        let old_adaptive = run_adaptive(&machine(), &w, &legacy_config());
        let new_static = session(Mode::Static).run(w.clone()).unwrap();
        let new_oracle = session(Mode::Oracle).run(w.clone()).unwrap();
        let new_adaptive =
            session(Mode::Adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS))).run(w).unwrap();
        assert_eq!(new_static.hop_bytes, old_static.cumulative_hop_bytes, "phases {phases:?}");
        assert_eq!(new_oracle.hop_bytes, old_oracle.cumulative_hop_bytes, "phases {phases:?}");
        assert_eq!(new_adaptive.hop_bytes, old_adaptive.cumulative_hop_bytes, "phases {phases:?}");
    }
}
