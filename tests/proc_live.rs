//! End-to-end acceptance of live telemetry on the multi-process backend:
//! a live run must (a) surface several heartbeat intervals per worker
//! *while the run is still executing*, (b) merge its streamed deltas with
//! the final upload into a timeline event-identical to a plain observed
//! run of the same scenario, (c) flag a worker whose heartbeats stall as
//! a straggler — and recover it — without failing the run, and (d) keep
//! worker crashes typed under the live monitor's polling loop.
//!
//! Every test drives `ProcBackend` with worker args pinning
//! [`proc_worker_entry`] so the re-exec'd test binary runs only the
//! worker hook.

use orwl_core::error::OrwlError;
use orwl_core::session::Session;
use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_obs::diff::{diff_telemetry, ObsDiffEntry};
use orwl_obs::{Json, ObsConfig, ToJson};
use orwl_proc::{Fault, FaultPlan, LiveConfig, LiveEvent, ProcBackend};
use orwl_repro::{ClusterMachine, Policy};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Worker re-entry point: spawned workers re-exec this test binary with
/// args selecting exactly this test, which hands control to the worker
/// lifecycle and exits the process.  In the parent run it is a no-op.
#[test]
fn proc_worker_entry() {
    orwl_proc::maybe_worker();
}

fn worker_args() -> Vec<String> {
    vec!["proc_worker_entry".to_string(), "--exact".to_string(), "--nocapture".to_string()]
}

fn backend(n_nodes: usize) -> ProcBackend {
    ProcBackend::paper(n_nodes).with_worker_args(worker_args()).with_io_timeout(Duration::from_secs(60))
}

/// Enough iterations that a 2-node run spans several hundred
/// milliseconds — multiple heartbeat intervals at the test cadence.
fn scenario() -> ScenarioSpec {
    ScenarioSpec::new(ScenarioFamily::DenseStencil, 36, 1).with_phases(vec![300])
}

/// An observed session with a zero lock-wait threshold, so the event
/// population is a deterministic function of the schedule and two runs of
/// the same scenario must produce identical per-kind event counts.
fn observed_session(n_nodes: usize, backend: ProcBackend) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .observe(ObsConfig { lock_wait_threshold_ns: 0, ..ObsConfig::default() })
        .backend(backend)
        .build()
        .unwrap()
}

fn counter(doc: &Json, name: &str) -> Option<f64> {
    doc.get("metrics").and_then(|m| m.get("counters")).and_then(|c| c.get(name)).and_then(Json::as_f64)
}

#[test]
fn live_runs_stream_heartbeats_and_merge_to_the_plain_timeline() {
    let spec = scenario();

    let beats: Arc<Mutex<HashMap<usize, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let deltas: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let live = {
        let beats = Arc::clone(&beats);
        let deltas = Arc::clone(&deltas);
        LiveConfig::new(Duration::from_millis(25))
            // A generous budget: this test is about streaming, not
            // straggling, and a loaded CI host must not trip the flag.
            .with_straggler_intervals(400)
            .with_on_event(move |event| match event {
                LiveEvent::Heartbeat { node, .. } => {
                    *beats.lock().unwrap().entry(*node).or_insert(0) += 1;
                }
                LiveEvent::Delta { node, bytes, stats } => {
                    assert!(*bytes > 0, "node {node} streamed an empty delta");
                    assert_eq!(stats.deltas, 1, "IntervalStats::of_delta folds exactly one delta");
                    *deltas.lock().unwrap() += 1;
                }
                _ => {}
            })
    };
    let live_obs = observed_session(2, backend(2).with_live(live))
        .run(spec.workload())
        .unwrap()
        .obs
        .expect("observed runs carry telemetry");

    // (a) Mid-run visibility: several heartbeat intervals per worker, and
    // at least one interval delta somewhere (the run does real work, so
    // some interval must have recorded something).
    let beats = beats.lock().unwrap().clone();
    for node in [0usize, 1] {
        let n = beats.get(&node).copied().unwrap_or(0);
        assert!(n >= 3, "node {node} produced {n} heartbeats; want at least 3 (beats: {beats:?})");
    }
    let deltas = *deltas.lock().unwrap();
    assert!(deltas > 0, "no interval delta arrived over the whole run");

    // The merged document records how much the run was watched live, and
    // the monitor saw every heartbeat the callback saw.
    let live_doc = live_obs.to_json();
    assert_eq!(
        counter(&live_doc, "live.heartbeats"),
        Some(beats.values().sum::<u64>() as f64),
        "live.heartbeats must match the callback tally"
    );
    assert_eq!(counter(&live_doc, "live.deltas"), Some(deltas as f64));
    assert_eq!(counter(&live_doc, "live.duplicate_deltas"), Some(0.0));
    assert!(counter(&live_doc, "live.delta_bytes").unwrap_or(0.0) > 0.0);

    // (b) Merging streamed deltas with the final upload loses and
    // duplicates nothing: a plain observed run of the same scenario has
    // the identical event population (per kind, per track) and drop
    // count.  Timing histograms and the live.* bookkeeping counters
    // legitimately differ, so the assertion filters to the event surface.
    let plain_obs = observed_session(2, backend(2))
        .run(spec.workload())
        .unwrap()
        .obs
        .expect("observed runs carry telemetry");
    let entries = diff_telemetry(&live_doc, &plain_obs.to_json(), 0.0).unwrap();
    let event_drift: Vec<&ObsDiffEntry> = entries
        .iter()
        .filter(|e| match e {
            ObsDiffEntry::FieldMismatch { .. } => true,
            ObsDiffEntry::MetricDrift { field, .. } => field.starts_with("events.") || field == "dropped",
        })
        .collect();
    assert!(
        event_drift.is_empty(),
        "live and plain runs must be event-identical; drifted:\n{}",
        event_drift.iter().map(|e| format!("  {e}")).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn a_stalled_worker_is_flagged_as_a_straggler_then_recovers() {
    // Straggler detection measures wall-clock heartbeat gaps, so it rides
    // on the thread scheduler; on an oversubscribed host a descheduled
    // streamer can overshoot its interval severalfold and flag a healthy
    // node, and a fast run can finish before the stalled streamer wakes
    // to beat again.  Take the best of three runs — the claim under test
    // is that the monitor separates the stalled node from the healthy
    // one when the machine cooperates, not that the scheduler always
    // cooperates.
    let mut events = Vec::new();
    for attempt in 0..3 {
        events = one_stalled_run();
        let spurious = events.iter().any(|e| matches!(e, LiveEvent::Straggler { node: 0, .. }));
        let flagged = events.iter().any(|e| matches!(e, LiveEvent::Straggler { node: 1, .. }));
        let recovered = events.iter().any(|e| matches!(e, LiveEvent::Recovered { node: 1 }));
        if (!spurious && flagged && recovered) || attempt == 2 {
            break;
        }
    }
    let straggler = events
        .iter()
        .position(|e| matches!(e, LiveEvent::Straggler { node: 1, .. }))
        .expect("the stalled node must be flagged before the recv deadline");
    match &events[straggler] {
        LiveEvent::Straggler { silent_for, missed, .. } => {
            assert!(*missed >= 5, "the flag fires only past the budget (missed {missed})");
            assert!(
                *silent_for < Duration::from_secs(60),
                "flagged at {silent_for:?} — the warning must precede the io deadline"
            );
        }
        _ => unreachable!(),
    }
    // The healthy node is never flagged, and the stalled one recovers
    // once its streamer wakes up (the stall is shorter than the run).
    assert!(
        !events.iter().any(|e| matches!(e, LiveEvent::Straggler { node: 0, .. })),
        "node 0 heartbeated throughout and must not be flagged"
    );
    assert!(
        events[straggler..].iter().any(|e| matches!(e, LiveEvent::Recovered { node: 1 })),
        "the straggler resumed beating and must be marked recovered"
    );
    // Both workers eventually report done.
    for node in [0usize, 1] {
        assert!(
            events.iter().any(|e| matches!(e, LiveEvent::Done { node: n } if *n == node)),
            "node {node} never reported done"
        );
    }
}

/// One run with node 1's streamer stalled, returning the live events.
fn one_stalled_run() -> Vec<LiveEvent> {
    let events: Arc<Mutex<Vec<LiveEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let live = {
        let events = Arc::clone(&events);
        // The budget (5 × 40 ms) leaves a healthy worker plenty of
        // scheduling-noise headroom: under load a 40 ms streamer interval
        // stretches toward ~100 ms, still well inside 200 ms.
        LiveConfig::new(Duration::from_millis(40))
            .with_straggler_intervals(5)
            .with_on_event(move |event| events.lock().unwrap().push(event.clone()))
    };
    // Node 1's streamer holds its first heartbeat back well past the
    // 200 ms straggler budget but far short of the 60 s recv deadline;
    // its tasks keep running, so the run itself must still succeed.  The
    // schedule is stretched past the plain test scenario so the run
    // reliably outlives the stall — the recovery heartbeat only exists
    // if the streamer wakes before the worker reports done.
    let spec = ScenarioSpec::new(ScenarioFamily::DenseStencil, 36, 1).with_phases(vec![900]);
    let _ = observed_session(
        2,
        backend(2)
            .with_faults(FaultPlan::new().with(Fault::StallStreamer { node: 1, ms: 500 }))
            .with_live(live),
    )
    .run(spec.workload())
    .expect("a straggler flag is a warning, not a failure");
    let events = events.lock().unwrap().clone();
    events
}

#[test]
fn a_crashing_worker_stays_a_typed_error_under_the_live_monitor() {
    let session = observed_session(
        2,
        backend(2)
            .with_io_timeout(Duration::from_secs(20))
            .with_faults(FaultPlan::new().with(Fault::PanicAfterStart { node: 0 }))
            .with_live(LiveConfig::new(Duration::from_millis(20))),
    );
    match session.run(scenario().workload()).unwrap_err() {
        OrwlError::WorkerFailed { node, detail } => {
            assert_eq!(node, 0, "the failure must be attributed to the injected node: {detail}");
            assert!(
                detail.contains("injected failure on node 0"),
                "the stderr tail must carry the panic message: {detail}"
            );
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}
