//! End-to-end acceptance of the multi-process backend: real worker
//! processes speaking the ORWL lock protocol over sockets must (a) report
//! plan hop-bytes identical to `ThreadBackend` on the same communication
//! matrix, (b) measure inter-node traffic that agrees with the cluster
//! simulator's prediction within the documented tolerance, (c) surface
//! worker crashes as typed errors instead of hangs, and (d) attach
//! wall-clock telemetry when observed.
//!
//! Every test drives `ProcBackend` with worker args pinning
//! [`proc_worker_entry`] so the re-exec'd test binary runs only the worker
//! hook.

use orwl_core::error::{ConfigError, OrwlError};
use orwl_core::session::{Mode, Session, ThreadBackend};
use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_numasim::taskgraph::TaskGraph;
use orwl_numasim::workload::{Phase, PhasedWorkload};
use orwl_obs::{ClockKind, EventKind, ObsConfig};
use orwl_proc::{Fault, FaultPlan, ProcBackend, CORR_TOLERANCE};
use orwl_repro::{ClusterBackend, ClusterMachine, Policy};
use orwl_topo::binding::RecordingBinder;
use std::sync::Arc;
use std::time::Duration;

/// Worker re-entry point: spawned workers re-exec this test binary with
/// args selecting exactly this test, which hands control to the worker
/// lifecycle and exits the process.  In the parent run it is a no-op.
#[test]
fn proc_worker_entry() {
    orwl_proc::maybe_worker();
}

fn worker_args() -> Vec<String> {
    vec!["proc_worker_entry".to_string(), "--exact".to_string(), "--nocapture".to_string()]
}

fn backend(n_nodes: usize) -> ProcBackend {
    ProcBackend::paper(n_nodes).with_worker_args(worker_args()).with_io_timeout(Duration::from_secs(60))
}

fn scenario() -> ScenarioSpec {
    ScenarioSpec::new(ScenarioFamily::DenseStencil, 36, 1).with_phases(vec![2])
}

fn proc_session(n_nodes: usize, policy: Policy) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(backend(n_nodes))
        .build()
        .unwrap()
}

fn cluster_session(n_nodes: usize, policy: Policy) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(ClusterBackend::new(machine))
        .build()
        .unwrap()
}

#[test]
fn scatter_hop_bytes_equal_the_thread_backend() {
    // Same communication matrix, same flattened topology, same
    // matrix-independent policy: the multi-process plan must price
    // exactly like the single-process thread executor's.
    let spec = scenario();
    let proc_report = proc_session(2, Policy::Scatter).run(spec.workload()).unwrap();
    let thread_report = Session::builder()
        .topology(ClusterMachine::paper(2).topology().clone())
        .policy(Policy::Scatter)
        .control_threads(0)
        .binder(Arc::new(RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .unwrap()
        .run(spec.program(1))
        .unwrap();
    assert_eq!(proc_report.backend, "proc");
    assert!(proc_report.hop_bytes > 0.0);
    assert!(
        (proc_report.hop_bytes - thread_report.hop_bytes).abs() < 1e-6,
        "proc plan hop-bytes {} must equal thread backend's {}",
        proc_report.hop_bytes,
        thread_report.hop_bytes
    );
    // The wall clock is real on both sides.
    assert!(proc_report.time.as_wall().is_some());
}

#[test]
fn measured_traffic_matches_the_simulator_prediction() {
    let spec = scenario();
    for policy in [Policy::Hierarchical, Policy::Scatter] {
        let predicted =
            cluster_session(2, policy).run(spec.workload()).unwrap().fabric.unwrap().inter_node_bytes;
        let measured = proc_session(2, policy).run(spec.workload()).unwrap().fabric.unwrap().inter_node_bytes;
        let relative = (measured - predicted).abs() / predicted.max(1.0);
        assert!(
            relative <= CORR_TOLERANCE,
            "{policy:?}: measured {measured} vs predicted {predicted} (relative error {relative})"
        );
    }
}

#[test]
fn hierarchical_measures_no_more_fabric_bytes_than_scatter() {
    let spec = scenario();
    let hier = proc_session(2, Policy::Hierarchical).run(spec.workload()).unwrap();
    let scatter = proc_session(2, Policy::Scatter).run(spec.workload()).unwrap();
    let (hb, sb) = (hier.fabric.unwrap().inter_node_bytes, scatter.fabric.unwrap().inter_node_bytes);
    assert!(hb <= sb, "hierarchical must not move more bytes across processes than scatter: {hb} vs {sb}");
}

#[test]
fn a_crashing_worker_is_a_typed_error_not_a_hang() {
    let machine = ClusterMachine::paper(2);
    let session = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .backend(
            backend(2)
                .with_io_timeout(Duration::from_secs(20))
                .with_faults(FaultPlan::new().with(Fault::PanicAfterStart { node: 1 })),
        )
        .build()
        .unwrap();
    match session.run(scenario().workload()).unwrap_err() {
        OrwlError::WorkerFailed { node, detail } => {
            assert_eq!(node, 1, "the failure must be attributed to the injected node: {detail}");
            assert!(
                detail.contains("injected failure on node 1"),
                "the stderr tail must carry the panic message: {detail}"
            );
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}

#[test]
fn observed_runs_attach_wall_clock_fabric_telemetry() {
    let machine = ClusterMachine::paper(2);
    let session = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .observe(ObsConfig::default())
        .backend(backend(2))
        .build()
        .unwrap();
    let report = session.run(scenario().workload()).unwrap();
    let obs = report.obs.expect("observed runs carry telemetry");
    assert_eq!(obs.clock, ClockKind::Wall);
    let transferred: f64 = obs
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FabricTransfer { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert!(transferred > 0.0, "fabric transfer events must be present");
    // The measured inter-node bytes are part of the telemetry volume.
    assert!(transferred >= report.fabric.unwrap().inter_node_bytes);
}

#[test]
fn merged_timeline_is_clock_aligned_across_nodes() {
    let machine = ClusterMachine::paper(2);
    let session = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .observe(ObsConfig::default())
        .backend(backend(2))
        .build()
        .unwrap();
    let obs = session.run(scenario().workload()).unwrap().obs.expect("observed runs carry telemetry");

    // One track per process: the coordinator plus both workers, each
    // labelled and populated.
    assert_eq!(obs.tracks.len(), 3, "tracks: {:?}", obs.tracks);
    assert_eq!(obs.tracks[0].label, "coordinator");
    assert_eq!(obs.tracks[1].label, "node0");
    assert_eq!(obs.tracks[2].label, "node1");
    for worker_track in [1u32, 2] {
        assert!(
            obs.events.iter().any(|e| e.track == worker_track),
            "no events arrived from track {worker_track}"
        );
    }

    // Per-track timestamps stay monotone after the rebase (walked in the
    // track's own emission order).
    for track in 0..3u32 {
        let mut by_seq: Vec<_> = obs.events.iter().filter(|e| e.track == track).collect();
        by_seq.sort_by_key(|e| e.seq);
        for pair in by_seq.windows(2) {
            assert!(
                pair[0].ts_us <= pair[1].ts_us,
                "track {track}: ts went backwards ({} then {})",
                pair[0].ts_us,
                pair[1].ts_us
            );
        }
    }

    // Every cross-node grant happens-before-consistently follows its
    // request in the merged clock, on a different track.
    let mut request_of = std::collections::HashMap::new();
    for e in &obs.events {
        if let EventKind::LockRequest { rseq, .. } = e.kind {
            request_of.insert(rseq, e);
        }
    }
    let mut grants = 0usize;
    for e in &obs.events {
        if let EventKind::LockGrant { rseq, .. } = e.kind {
            let req =
                request_of.get(&rseq).unwrap_or_else(|| panic!("grant {rseq:#x} has no matching request"));
            assert!(req.ts_us <= e.ts_us, "request after grant for rseq {rseq:#x}");
            assert_ne!(req.track, e.track, "cross-node section granted on the requester's track");
            grants += 1;
        }
    }
    assert!(grants > 0, "a 2-node stencil run must cross nodes");
}

#[test]
fn obs_report_attributes_hotspot_contention_to_the_hub() {
    // The 15-task hotspot family has exactly one hub: task 0.  The lab
    // pattern is symmetric (spokes and hub read each other), which
    // spreads FIFO waiting across every location; to give the analyzer an
    // unambiguous ground truth, keep only the spokes→hub direction, so
    // the far node's spokes storm the hub's location over the wire while
    // the near node's spokes queue on it in-process.  Two backedges stay
    // as the hub's pacing probes: cross-node reads of two far spokes keep
    // the hub's own loop as slow as the read storm, so its writes
    // genuinely interleave with the spokes' reads instead of finishing
    // before they connect.  The probed spokes stop reading the hub so
    // their own locations stay close to idle.
    let mut m = ScenarioSpec::new(ScenarioFamily::Hotspot, 15, 1).phase_matrices().remove(0);
    for spoke in 1..m.order() {
        m.set(spoke, 0, 0.0); // drop the hub-reads-spoke backedges ...
    }
    for probe in [2, 6] {
        m.set(probe, 0, 1024.0); // ... except the two pacing probes
        m.set(0, probe, 0.0);
    }
    let workload = PhasedWorkload {
        phases: vec![Phase {
            graph: TaskGraph::from_matrix(
                &m,
                orwl_lab::scenario::ELEMENTS_PER_TASK,
                orwl_lab::scenario::PRIVATE_BYTES_PER_TASK,
            ),
            iterations: 200,
        }],
    };

    // Wait attribution is a wall-clock measurement, so it rides on the
    // thread scheduler; on an oversubscribed host a descheduled serving
    // thread can park milliseconds of phantom wait on an idle location.
    // Take the best of three runs — the claim under test is that the
    // analyzer pins the hotspot when the machine cooperates, not that the
    // scheduler always cooperates.
    let mut best: Option<orwl_obs::analyze::ObsReport> = None;
    for _ in 0..3 {
        let machine = ClusterMachine::paper(2);
        let session = Session::builder()
            .topology(machine.topology().clone())
            .policy(Policy::Scatter)
            .control_threads(0)
            // A 1 µs threshold keeps the short queueing of the hub's
            // in-process readers in the picture alongside the wire waits.
            .observe(ObsConfig { lock_wait_threshold_ns: 1_000, ..ObsConfig::default() })
            .backend(backend(2))
            .build()
            .unwrap();
        let obs = session.run(workload.clone()).unwrap().obs.expect("observed runs carry telemetry");
        let report = orwl_obs::analyze::analyze(&obs, usize::MAX);
        assert!(report.total_wait_ns > 0, "a hotspot run must wait on locks");
        assert!(report.cross_node_grants > 0, "the storm must cross the process boundary");
        let better = best.as_ref().is_none_or(|b| report.location_share(0) > b.location_share(0));
        if better {
            best = Some(report);
        }
        if best.as_ref().is_some_and(|b| b.location_share(0) >= 0.8) {
            break;
        }
    }
    let report = best.expect("three attempts ran");
    let share = report.location_share(0);
    assert!(
        share >= 0.8,
        "hub location 0 should dominate the waiting: share {share:.3} of {} ns\n{}",
        report.total_wait_ns,
        report.render_table()
    );
}

#[test]
fn mismatched_configurations_are_rejected_before_spawning() {
    // Wrong workload shape.
    let mut program = orwl_core::task::OrwlProgram::new();
    program.add_task(orwl_core::task::TaskSpec::new("t", vec![]), |_| {});
    match proc_session(2, Policy::Hierarchical).run(program).unwrap_err() {
        OrwlError::Config(ConfigError::WorkloadMismatch { backend, expected }) => {
            assert_eq!(backend, "proc");
            assert_eq!(expected, "phased");
        }
        other => panic!("expected WorkloadMismatch, got {other:?}"),
    }
    // Wrong topology.
    let wrong_topo = Session::builder()
        .topology(orwl_topo::synthetic::laptop())
        .control_threads(0)
        .backend(backend(2))
        .build()
        .unwrap();
    match wrong_topo.run(scenario().workload()).unwrap_err() {
        OrwlError::Config(ConfigError::TopologyMismatch { backend, got, .. }) => {
            assert_eq!(backend, "proc");
            assert_eq!(got, "laptop");
        }
        other => panic!("expected TopologyMismatch, got {other:?}"),
    }
    // Unsupported mode.
    let machine = ClusterMachine::paper(2);
    let oracle = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .mode(Mode::Oracle)
        .backend(backend(2))
        .build()
        .unwrap();
    match oracle.run(scenario().workload()).unwrap_err() {
        OrwlError::Config(ConfigError::UnsupportedMode { backend, mode }) => {
            assert_eq!(backend, "proc");
            assert_eq!(mode, "oracle");
        }
        other => panic!("expected UnsupportedMode, got {other:?}"),
    }
}
