//! End-to-end acceptance of the multi-process backend: real worker
//! processes speaking the ORWL lock protocol over sockets must (a) report
//! plan hop-bytes identical to `ThreadBackend` on the same communication
//! matrix, (b) measure inter-node traffic that agrees with the cluster
//! simulator's prediction within the documented tolerance, (c) surface
//! worker crashes as typed errors instead of hangs, and (d) attach
//! wall-clock telemetry when observed.
//!
//! Every test drives `ProcBackend` with worker args pinning
//! [`proc_worker_entry`] so the re-exec'd test binary runs only the worker
//! hook.

use orwl_core::error::{ConfigError, OrwlError};
use orwl_core::session::{Mode, Session, ThreadBackend};
use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_obs::{ClockKind, EventKind, ObsConfig};
use orwl_proc::{ProcBackend, CORR_TOLERANCE};
use orwl_repro::{ClusterBackend, ClusterMachine, Policy};
use orwl_topo::binding::RecordingBinder;
use std::sync::Arc;
use std::time::Duration;

/// Worker re-entry point: spawned workers re-exec this test binary with
/// args selecting exactly this test, which hands control to the worker
/// lifecycle and exits the process.  In the parent run it is a no-op.
#[test]
fn proc_worker_entry() {
    orwl_proc::maybe_worker();
}

fn worker_args() -> Vec<String> {
    vec!["proc_worker_entry".to_string(), "--exact".to_string(), "--nocapture".to_string()]
}

fn backend(n_nodes: usize) -> ProcBackend {
    ProcBackend::paper(n_nodes).with_worker_args(worker_args()).with_io_timeout(Duration::from_secs(60))
}

fn scenario() -> ScenarioSpec {
    ScenarioSpec::new(ScenarioFamily::DenseStencil, 36, 1).with_phases(vec![2])
}

fn proc_session(n_nodes: usize, policy: Policy) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(backend(n_nodes))
        .build()
        .unwrap()
}

fn cluster_session(n_nodes: usize, policy: Policy) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(ClusterBackend::new(machine))
        .build()
        .unwrap()
}

#[test]
fn scatter_hop_bytes_equal_the_thread_backend() {
    // Same communication matrix, same flattened topology, same
    // matrix-independent policy: the multi-process plan must price
    // exactly like the single-process thread executor's.
    let spec = scenario();
    let proc_report = proc_session(2, Policy::Scatter).run(spec.workload()).unwrap();
    let thread_report = Session::builder()
        .topology(ClusterMachine::paper(2).topology().clone())
        .policy(Policy::Scatter)
        .control_threads(0)
        .binder(Arc::new(RecordingBinder::new()))
        .backend(ThreadBackend)
        .build()
        .unwrap()
        .run(spec.program(1))
        .unwrap();
    assert_eq!(proc_report.backend, "proc");
    assert!(proc_report.hop_bytes > 0.0);
    assert!(
        (proc_report.hop_bytes - thread_report.hop_bytes).abs() < 1e-6,
        "proc plan hop-bytes {} must equal thread backend's {}",
        proc_report.hop_bytes,
        thread_report.hop_bytes
    );
    // The wall clock is real on both sides.
    assert!(proc_report.time.as_wall().is_some());
}

#[test]
fn measured_traffic_matches_the_simulator_prediction() {
    let spec = scenario();
    for policy in [Policy::Hierarchical, Policy::Scatter] {
        let predicted =
            cluster_session(2, policy).run(spec.workload()).unwrap().fabric.unwrap().inter_node_bytes;
        let measured = proc_session(2, policy).run(spec.workload()).unwrap().fabric.unwrap().inter_node_bytes;
        let relative = (measured - predicted).abs() / predicted.max(1.0);
        assert!(
            relative <= CORR_TOLERANCE,
            "{policy:?}: measured {measured} vs predicted {predicted} (relative error {relative})"
        );
    }
}

#[test]
fn hierarchical_measures_no_more_fabric_bytes_than_scatter() {
    let spec = scenario();
    let hier = proc_session(2, Policy::Hierarchical).run(spec.workload()).unwrap();
    let scatter = proc_session(2, Policy::Scatter).run(spec.workload()).unwrap();
    let (hb, sb) = (hier.fabric.unwrap().inter_node_bytes, scatter.fabric.unwrap().inter_node_bytes);
    assert!(hb <= sb, "hierarchical must not move more bytes across processes than scatter: {hb} vs {sb}");
}

#[test]
fn a_crashing_worker_is_a_typed_error_not_a_hang() {
    let machine = ClusterMachine::paper(2);
    let session = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .backend(
            backend(2)
                .with_io_timeout(Duration::from_secs(20))
                .with_worker_env(orwl_proc::worker::ENV_PANIC_NODE, "1"),
        )
        .build()
        .unwrap();
    match session.run(scenario().workload()).unwrap_err() {
        OrwlError::WorkerFailed { node, detail } => {
            assert_eq!(node, 1, "the failure must be attributed to the injected node: {detail}");
            assert!(
                detail.contains("injected failure on node 1"),
                "the stderr tail must carry the panic message: {detail}"
            );
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
}

#[test]
fn observed_runs_attach_wall_clock_fabric_telemetry() {
    let machine = ClusterMachine::paper(2);
    let session = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .observe(ObsConfig::default())
        .backend(backend(2))
        .build()
        .unwrap();
    let report = session.run(scenario().workload()).unwrap();
    let obs = report.obs.expect("observed runs carry telemetry");
    assert_eq!(obs.clock, ClockKind::Wall);
    let transferred: f64 = obs
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FabricTransfer { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert!(transferred > 0.0, "fabric transfer events must be present");
    // The measured inter-node bytes are part of the telemetry volume.
    assert!(transferred >= report.fabric.unwrap().inter_node_bytes);
}

#[test]
fn mismatched_configurations_are_rejected_before_spawning() {
    // Wrong workload shape.
    let mut program = orwl_core::task::OrwlProgram::new();
    program.add_task(orwl_core::task::TaskSpec::new("t", vec![]), |_| {});
    match proc_session(2, Policy::Hierarchical).run(program).unwrap_err() {
        OrwlError::Config(ConfigError::WorkloadMismatch { backend, expected }) => {
            assert_eq!(backend, "proc");
            assert_eq!(expected, "phased");
        }
        other => panic!("expected WorkloadMismatch, got {other:?}"),
    }
    // Wrong topology.
    let wrong_topo = Session::builder()
        .topology(orwl_topo::synthetic::laptop())
        .control_threads(0)
        .backend(backend(2))
        .build()
        .unwrap();
    match wrong_topo.run(scenario().workload()).unwrap_err() {
        OrwlError::Config(ConfigError::TopologyMismatch { backend, got, .. }) => {
            assert_eq!(backend, "proc");
            assert_eq!(got, "laptop");
        }
        other => panic!("expected TopologyMismatch, got {other:?}"),
    }
    // Unsupported mode.
    let machine = ClusterMachine::paper(2);
    let oracle = Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .mode(Mode::Oracle)
        .backend(backend(2))
        .build()
        .unwrap();
    match oracle.run(scenario().workload()).unwrap_err() {
        OrwlError::Config(ConfigError::UnsupportedMode { backend, mode }) => {
            assert_eq!(backend, "proc");
            assert_eq!(mode, "oracle");
        }
        other => panic!("expected UnsupportedMode, got {other:?}"),
    }
}
