//! Regression test for the debug-mode circular-wait detector (ROADMAP PR 2
//! hazard): iterative handles posted **lazily mid-run** instead of in a
//! fenced initialisation phase can land one write behind their partner on
//! every edge of a partner cycle — a schedule deadlock the runtime used to
//! sit in forever.  In debug builds the [`LockFifo`] cycle detector must
//! panic with the cycle instead.
//!
//! The old hazard pattern, distilled to its two-task core: each task holds
//! the write lock on its own frontier (granted immediately — its request
//! was first in that FIFO) and only *then* lazily posts its read of the
//! partner's frontier.  Both reads queue behind a write that will never be
//! released, because each writer is parked in the other's FIFO.

#![cfg(debug_assertions)]

use orwl_core::prelude::*;
use orwl_core::Location;
use std::sync::{Arc, Barrier};

#[test]
fn lazily_posted_iterative_handles_panic_instead_of_deadlocking() {
    let frontier_a = Location::new("frontier-a", 0u64);
    let frontier_b = Location::new("frontier-b", 0u64);
    // Both tasks acquire their own write before either posts its read —
    // the fence reproduces the lazy-posting schedule deterministically.
    let writes_granted = Arc::new(Barrier::new(2));

    let mut joins = Vec::new();
    for (mine, partner) in [(&frontier_a, &frontier_b), (&frontier_b, &frontier_a)] {
        let mine = Arc::clone(mine);
        let partner = Arc::clone(partner);
        let fence = Arc::clone(&writes_granted);
        joins.push(
            std::thread::Builder::new()
                .name(format!("orwl-task-{}", mine.name()))
                .spawn(move || {
                    let mut write = mine.iterative_handle(AccessMode::Write);
                    let mut read = partner.iterative_handle(AccessMode::Read);
                    let guard = write.acquire().unwrap(); // lazily posts + grants
                    fence.wait();
                    // Lazily posts the read behind the partner's parked
                    // write: the second thread to get here closes the cycle.
                    let r = read.acquire().unwrap();
                    drop(r);
                    drop(guard);
                })
                .unwrap(),
        );
    }

    let outcomes: Vec<_> = joins.into_iter().map(|j| j.join()).collect();
    let panics: Vec<String> = outcomes
        .into_iter()
        .filter_map(|o| o.err())
        .map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
        .collect();
    assert_eq!(panics.len(), 1, "exactly the cycle-closing thread must panic: {panics:?}");
    assert!(panics[0].contains("ORWL deadlock detected"), "unexpected panic message: {}", panics[0]);
    // The report names the parked task threads forming the cycle.
    assert!(panics[0].contains("orwl-task-frontier-a") && panics[0].contains("orwl-task-frontier-b"));
}

#[test]
fn fenced_initialisation_does_not_trip_the_detector() {
    // The corrected pattern: every request is posted in a deterministic
    // init phase *before* any acquire, yielding the periodic deadlock-free
    // schedule — the detector must stay silent through real contention.
    let frontier_a = Location::new("fa", 0u64);
    let frontier_b = Location::new("fb", 0u64);
    let posted = Arc::new(Barrier::new(2));

    let mut joins = Vec::new();
    for (mine, partner) in [(&frontier_a, &frontier_b), (&frontier_b, &frontier_a)] {
        let mine = Arc::clone(mine);
        let partner = Arc::clone(partner);
        let fence = Arc::clone(&posted);
        joins.push(std::thread::spawn(move || {
            let mut write = mine.iterative_handle(AccessMode::Write);
            let mut read = partner.iterative_handle(AccessMode::Read);
            write.request().unwrap();
            read.request().unwrap();
            fence.wait(); // every request is queued before any acquire
            for i in 1..=50u64 {
                {
                    let mut g = write.acquire().unwrap();
                    *g = i;
                }
                {
                    let g = read.acquire().unwrap();
                    assert!(*g <= 50);
                }
            }
            write.cancel();
            read.cancel();
        }));
    }
    for j in joins {
        j.join().expect("the fenced schedule must run to completion");
    }
    assert_eq!(frontier_a.snapshot(), 50);
    assert_eq!(frontier_b.snapshot(), 50);
}
