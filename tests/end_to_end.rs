//! Cross-crate integration tests: the real ORWL runtime executing the LK23
//! workload end to end under every placement policy, with the placement
//! pipeline (program → matrix → Algorithm 1 → binding) checked against the
//! geometry of the decomposition.

use orwl_core::prelude::*;
use orwl_lk23::blocks::BlockDecomposition;
use orwl_lk23::kernel::{reference_jacobi, Grid};
use orwl_lk23::openmp_like::run_openmp_like;
use orwl_lk23::orwl_impl::{build_program, run_orwl};
use orwl_topo::binding::RecordingBinder;
use orwl_topo::synthetic;
use std::sync::Arc;

#[test]
fn orwl_bind_nobind_and_openmp_agree_with_the_reference() {
    let n = 48;
    let iterations = 5;
    let initial = Grid::initial(n, n);
    let reference = reference_jacobi(&initial, iterations);
    let decomp = BlockDecomposition::new(n, n, 3, 3).unwrap();

    // OpenMP-like fork-join baseline.
    let openmp = run_openmp_like(&initial, iterations, 4);
    assert_eq!(openmp.max_abs_diff(&reference), 0.0);

    // ORWL without binding.
    let nobind_session = Session::builder()
        .topology(synthetic::cluster2016_subset(2).unwrap())
        .policy(Policy::NoBind)
        .backend(ThreadBackend)
        .build()
        .unwrap();
    let (nobind, _) = run_orwl(&initial, decomp, iterations, &nobind_session).unwrap();
    assert_eq!(nobind.max_abs_diff(&reference), 0.0);

    // ORWL with the topology-aware binding (recording binder so the test is
    // independent of the host's real CPU count).
    let binder = Arc::new(RecordingBinder::new());
    let bind_session = Session::builder()
        .topology(synthetic::cluster2016_subset(2).unwrap())
        .binder(binder.clone())
        .backend(ThreadBackend)
        .build()
        .unwrap();
    let (bind, report) = run_orwl(&initial, decomp, iterations, &bind_session).unwrap();
    assert_eq!(bind.max_abs_diff(&reference), 0.0);

    // The placement bound every block task and the binder was exercised.
    assert!(report.plan.placement.bound_fraction() > 0.99);
    assert!(binder.anonymous_bindings().len() >= decomp.n_blocks());
}

#[test]
fn extracted_comm_matrix_matches_decomposition_geometry() {
    let n = 64;
    let initial = Grid::initial(n, n);
    let decomp = BlockDecomposition::new(n, n, 4, 4).unwrap();
    let built = build_program(&initial, decomp, 1);
    // The matrix the runtime derives from the handles equals the matrix
    // derived from pure geometry — this is the paper's claim that the
    // runtime can extract affinity automatically from the program.
    assert_eq!(built.program.comm_matrix(), decomp.comm_matrix(8));
}

#[test]
fn treematch_placement_has_better_locality_than_scatter_for_lk23() {
    use orwl_comm::metrics::mapping_cost_default;
    use orwl_treematch::policies::{compute_placement, Policy};

    let n = 128;
    let initial = Grid::initial(n, n);
    let decomp = BlockDecomposition::new(n, n, 8, 8).unwrap();
    let built = build_program(&initial, decomp, 1);
    let matrix = built.program.comm_matrix();
    let topo = synthetic::cluster2016_subset(8).unwrap(); // 64 cores

    let pus = topo.pu_os_indices();
    let tm = compute_placement(Policy::TreeMatch, &topo, &matrix, 0);
    let scatter = compute_placement(Policy::Scatter, &topo, &matrix, 0);
    let random = compute_placement(Policy::Random(3), &topo, &matrix, 0);

    let cost = |p: &orwl_treematch::Placement| {
        mapping_cost_default(&matrix, &topo, &p.compute_mapping_with(|t| pus[t % pus.len()]))
    };
    assert!(cost(&tm) < cost(&scatter), "treematch {} vs scatter {}", cost(&tm), cost(&scatter));
    assert!(cost(&tm) < cost(&random), "treematch {} vs random {}", cost(&tm), cost(&random));
}

#[test]
fn every_policy_runs_the_real_workload_correctly() {
    let n = 32;
    let iterations = 3;
    let initial = Grid::initial(n, n);
    let reference = reference_jacobi(&initial, iterations);
    let decomp = BlockDecomposition::new(n, n, 2, 2).unwrap();
    let topo = synthetic::laptop();

    for policy in orwl_treematch::Policy::all() {
        let session = Session::builder()
            .topology(topo.clone())
            .policy(policy)
            .binder(Arc::new(RecordingBinder::new()))
            .backend(ThreadBackend)
            .build()
            .unwrap();
        let (result, report) = run_orwl(&initial, decomp, iterations, &session).unwrap();
        assert_eq!(
            result.max_abs_diff(&reference),
            0.0,
            "policy {} changed the numerical result",
            policy.name()
        );
        report.plan.placement.validate_against(&topo).unwrap();
    }
}

#[test]
fn runtime_reports_are_consistent() {
    let n = 32;
    let initial = Grid::initial(n, n);
    let decomp = BlockDecomposition::new(n, n, 2, 2).unwrap();
    let session = Session::builder()
        .topology(synthetic::laptop())
        .policy(Policy::NoBind)
        .control_threads(2)
        .backend(ThreadBackend)
        .build()
        .unwrap();
    let (_, report) = run_orwl(&initial, decomp, 2, &session).unwrap();

    let thread = report.thread.as_ref().expect("thread backend reports details");
    assert_eq!(thread.per_task_time.len(), 4);
    assert_eq!(thread.stats.tasks_started, 4);
    assert_eq!(thread.stats.tasks_finished, 4);
    // Two lifecycle events per task, all drained by the control threads.
    assert_eq!(thread.stats.control_events, 8);
    assert!(thread.max_task_time() <= report.time.as_wall().unwrap());
    assert_eq!(report.plan.matrix.order(), 4);
    // The unified report carries the locality metrics directly.
    assert!(report.breakdown.total() > 0.0);
    assert!(report.hop_bytes >= 0.0);
}
