//! End-to-end acceptance of node-loss recovery on the multi-process
//! backend: a worker SIGKILLed mid-run (via the typed fault plan) must
//! not take the run down — the coordinator confirms the loss, re-shards
//! the dead node's tasks onto the survivors, and the run completes
//! degraded with the loss and the recovery on the telemetry record.
//! Without recovery enabled the same fault must stay a *typed* failure
//! surfaced within the protocol deadlines, and the worker pool's
//! teardown must reap even a worker frozen under `SIGSTOP`.
//!
//! Every test drives `ProcBackend` with worker args pinning
//! [`proc_worker_entry`] so the re-exec'd test binary runs only the
//! worker hook.

use orwl_core::error::OrwlError;
use orwl_core::session::Session;
use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_obs::{EventKind, ObsConfig};
use orwl_proc::{Fault, FaultPlan, LiveConfig, ProcBackend, RecoveryConfig, WorkerPool};
use orwl_repro::{ClusterMachine, Policy};
use std::time::{Duration, Instant};

/// Worker re-entry point: spawned workers re-exec this test binary with
/// args selecting exactly this test, which hands control to the worker
/// lifecycle and exits the process.  In the parent run it is a no-op.
#[test]
fn proc_worker_entry() {
    orwl_proc::maybe_worker();
}

fn worker_args() -> Vec<String> {
    vec!["proc_worker_entry".to_string(), "--exact".to_string(), "--nocapture".to_string()]
}

fn backend(n_nodes: usize) -> ProcBackend {
    ProcBackend::paper(n_nodes).with_worker_args(worker_args()).with_io_timeout(Duration::from_secs(60))
}

fn observed_session(n_nodes: usize, backend: ProcBackend) -> Session {
    let machine = ClusterMachine::paper(n_nodes);
    Session::builder()
        .topology(machine.topology().clone())
        .policy(Policy::Hierarchical)
        .control_threads(0)
        .observe(ObsConfig { lock_wait_threshold_ns: 0, ..ObsConfig::default() })
        .backend(backend)
        .build()
        .unwrap()
}

/// Long enough that the kill at 200 ms lands mid-run on any plausible
/// host, with plenty of schedule left for the survivors to finish.
fn chaos_scenario() -> ScenarioSpec {
    ScenarioSpec::new(ScenarioFamily::DenseStencil, 36, 1).with_phases(vec![1200])
}

#[test]
fn a_killed_worker_is_survived_by_resharding_onto_the_rest() {
    // Node 2 of 4 yanks its own power cord 200 ms after Start: no
    // unwinding, no error frame, no goodbye.  The coordinator must
    // confirm the loss, re-shard node 2's tasks onto nodes {0, 1, 3}
    // and drive the run to a successful (degraded) completion.
    let live = LiveConfig::new(Duration::from_millis(40)).with_straggler_intervals(400);
    let session = observed_session(
        4,
        backend(4)
            .with_faults(FaultPlan::new().with(Fault::Sigkill { node: 2, after_ms: 200 }))
            .with_recovery(RecoveryConfig::default())
            .with_live(live),
    );
    let report = session.run(chaos_scenario().workload()).expect("the survivors must finish the run");

    // The adapt report records the re-shard.
    let adapt = report.adapt.expect("a recovered run carries an adapt report");
    assert!(adapt.node_reshards >= 1, "node_reshards = {}", adapt.node_reshards);

    // The merged timeline tells the loss story in order: a NodeLoss for
    // node 2, then a Recovery for node 2, with monotone timestamps and a
    // consistent task count (9 of 36 tasks lived on the dead node).
    let obs = report.obs.expect("observed runs carry telemetry");
    let loss = obs
        .events
        .iter()
        .find_map(|ev| match ev.kind {
            EventKind::NodeLoss { node, tasks_lost } => Some((ev.ts_us, node, tasks_lost)),
            _ => None,
        })
        .expect("the timeline must record the node loss");
    let recovery = obs
        .events
        .iter()
        .find_map(|ev| match ev.kind {
            EventKind::Recovery { node, tasks_migrated } => Some((ev.ts_us, node, tasks_migrated)),
            _ => None,
        })
        .expect("the timeline must record the recovery");
    assert_eq!(loss.1, 2, "the loss must name the killed node");
    assert_eq!(recovery.1, 2, "the recovery must name the killed node");
    assert!(loss.0 <= recovery.0, "loss at {} must precede recovery at {}", loss.0, recovery.0);
    assert!(loss.2 >= 1, "the dead node hosted tasks");
    assert_eq!(loss.2, recovery.2, "every lost task must be migrated, no more, no fewer");

    // The live counters agree with the events.
    let counter = |name: &str| {
        obs.metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert_eq!(counter("live.node_losses"), 1);
    assert_eq!(counter("live.reshards"), 1);
    assert_eq!(counter("live.tasks_migrated"), loss.2 as u64);

    // Hop-byte accounting stays consistent: the survivors really did
    // talk over the fabric, and the measured split carries the traffic.
    let fabric = report.fabric.expect("proc reports carry the traffic split");
    assert!(fabric.inter_node_bytes > 0.0, "survivors exchanged no bytes: {fabric:?}");
    assert!(report.hop_bytes > 0.0);
}

#[test]
fn an_unrecoverable_loss_stays_a_typed_failure_within_the_deadline() {
    // The same kill without recovery enabled: the run must fail with a
    // typed WorkerFailed naming the dead node — and fail *fast*, via
    // the closed control socket, not by waiting out the 60 s io timeout.
    // The bound is half the timeout: generous to an oversubscribed host
    // running the whole suite, impossible to meet by timing out.
    let started = Instant::now();
    let session = observed_session(
        2,
        backend(2)
            .with_faults(FaultPlan::new().with(Fault::Sigkill { node: 1, after_ms: 100 }))
            .with_live(LiveConfig::new(Duration::from_millis(25)).with_straggler_intervals(400)),
    );
    match session.run(chaos_scenario().workload()).unwrap_err() {
        OrwlError::WorkerFailed { node, detail } => {
            assert_eq!(node, 1, "the failure must be attributed to the killed node: {detail}");
        }
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(30), "failure took {elapsed:?}; the loss must surface fast");
}

#[test]
fn teardown_reaps_a_worker_frozen_under_sigstop() {
    // A worker stopped with SIGSTOP ignores SIGTERM until resumed, so
    // the pool's graceful teardown must escalate to SIGKILL — and reap —
    // within its bounded grace, leaving no stopped orphan behind.
    let pool = WorkerPool::spawn(1, &worker_args(), &[], Duration::from_secs(5)).expect("spawn");
    let pid = pool.worker_pid(0);
    // SAFETY: plain signal sends against a child we just spawned.
    unsafe {
        assert_eq!(libc::kill(pid as libc::pid_t, libc::SIGSTOP), 0, "SIGSTOP must land");
    }
    let started = Instant::now();
    drop(pool);
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(5), "teardown took {elapsed:?}; the grace must be bounded");
    // The process is gone: reaped, not a zombie and not still stopped.
    let alive = unsafe { libc::kill(pid as libc::pid_t, 0) };
    assert_eq!(alive, -1, "worker {pid} still signallable after teardown");
}
