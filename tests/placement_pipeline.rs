//! Integration tests of the placement pipeline across crates: topology →
//! communication matrix → Algorithm 1 → metrics → simulator, without the
//! ORWL runtime in the loop.

use orwl_adapt::backend::SimBackend;
use orwl_comm::metrics::{mapping_cost_default, traffic_breakdown};
use orwl_comm::patterns::{stencil_2d, StencilSpec};
use orwl_core::session::Session;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::exec::simulate;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::scenario::ExecutionScenario;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};

#[test]
fn better_mapping_cost_translates_into_better_simulated_time() {
    // The static metric (volume × distance) and the dynamic simulator must
    // agree on the ranking of placements — otherwise one of the two models
    // is inconsistent.
    let topo = synthetic::cluster2016_subset(4).unwrap();
    let machine = SimMachine::new(topo.clone(), CostParams::cluster2016());
    let spec = StencilSpec::nine_point_blocks(8, 2048, 8); // 64 tasks on 32 cores
    let matrix = stencil_2d(&spec);
    let graph = TaskGraph::stencil(&spec, 2048.0 * 2048.0, 8.0);
    let pus = topo.pu_os_indices();

    let mut measured: Vec<(String, f64, f64)> = Vec::new();
    for policy in [Policy::TreeMatch, Policy::Packed, Policy::Scatter, Policy::Random(5)] {
        let placement = compute_placement(policy, &topo, &matrix, 0);
        let mapping = placement.compute_mapping_with(|t| pus[t % pus.len()]);
        let cost = mapping_cost_default(&matrix, &topo, &mapping);
        // The simulated execution goes through the Session front door.
        let session = Session::builder()
            .topology(topo.clone())
            .policy(policy)
            .control_threads(0)
            .backend(SimBackend::new(machine.clone()))
            .build()
            .unwrap();
        let time = session.run(PhasedWorkload::single_phase(graph.clone(), 3)).unwrap().time.seconds();
        measured.push((policy.name().to_string(), cost, time));
    }
    let tm = measured.iter().find(|(n, _, _)| n == "treematch").unwrap().clone();
    for (name, cost, time) in &measured {
        if name != "treematch" {
            assert!(tm.1 <= cost * 1.01, "cost ranking violated by {name}");
            assert!(tm.2 <= time * 1.01, "time ranking violated by {name}");
        }
    }
}

#[test]
fn treematch_keeps_stencil_neighbours_on_the_same_socket() {
    let topo = synthetic::cluster2016_subset(8).unwrap(); // 64 cores
    let matrix = stencil_2d(&StencilSpec::nine_point_blocks(8, 2048, 8)); // 64 tasks
    let placement = compute_placement(Policy::TreeMatch, &topo, &matrix, 0);
    let mapping = placement.compute_mapping_or_zero();
    let breakdown = traffic_breakdown(&matrix, &topo, &mapping);
    // The 9-point stencil on 8 sockets cannot be fully local, but the
    // topology-aware placement must keep a clear majority of the halo
    // traffic inside NUMA nodes — substantially more than scatter does.
    let scatter = compute_placement(Policy::Scatter, &topo, &matrix, 0).compute_mapping_or_zero();
    let scatter_breakdown = traffic_breakdown(&matrix, &topo, &scatter);
    assert!(breakdown.local_fraction() > 0.6, "treematch locality {breakdown:?}");
    assert!(
        breakdown.local_fraction() > scatter_breakdown.local_fraction() + 0.05,
        "treematch local fraction {} should clearly beat scatter {}",
        breakdown.local_fraction(),
        scatter_breakdown.local_fraction()
    );
}

#[test]
fn control_threads_share_the_socket_of_their_compute_threads() {
    use orwl_treematch::algorithm::{TreeMatchConfig, TreeMatchMapper};
    use orwl_treematch::control::ControlThreadSpec;

    // On the no-SMT paper machine with spare cores, the control threads must
    // end up on the same NUMA nodes as the threads they serve.
    let topo = synthetic::cluster2016_subset(2).unwrap(); // 16 cores
    let matrix = stencil_2d(&StencilSpec::nine_point_blocks(3, 1024, 8)); // 9 tasks
    let mapper = TreeMatchMapper::new(TreeMatchConfig { control: ControlThreadSpec::with_count(2) });
    let placement = mapper.compute_placement(&topo, &matrix);
    assert!(placement.control.iter().all(Option::is_some));
    let compute_nodes: std::collections::HashSet<usize> =
        placement.compute.iter().flatten().map(|pu| pu / 8).collect();
    for pu in placement.control.iter().flatten() {
        assert!(compute_nodes.contains(&(pu / 8)), "control thread on an idle socket (PU {pu})");
    }
}

#[test]
fn oversubscribed_placement_balances_and_simulates_faster_than_stacking() {
    let topo = synthetic::cluster2016_subset(2).unwrap(); // 16 cores
    let machine = SimMachine::new(topo.clone(), CostParams::cluster2016());
    let spec = StencilSpec::nine_point_blocks(8, 1024, 8); // 64 tasks on 16 cores
    let matrix = stencil_2d(&spec);
    let graph = TaskGraph::stencil(&spec, 1024.0 * 1024.0, 8.0);

    let placement = compute_placement(Policy::TreeMatch, &topo, &matrix, 0);
    let mapping = placement.compute_mapping_or_zero();
    // Load balance: every PU hosts exactly 4 tasks.
    let mut counts = std::collections::HashMap::new();
    for pu in &mapping {
        *counts.entry(*pu).or_insert(0usize) += 1;
    }
    assert_eq!(counts.len(), 16);
    assert!(counts.values().all(|&c| c == 4), "unbalanced: {counts:?}");

    // And it beats stacking everything on one socket (the stacked mapping
    // is not a policy, so it exercises the raw simulator directly).
    let stacked: Vec<usize> = (0..64).map(|t| t % 8).collect();
    let session = Session::builder()
        .topology(topo.clone())
        .policy(Policy::TreeMatch)
        .control_threads(0)
        .backend(SimBackend::new(machine.clone()))
        .build()
        .unwrap();
    let t_tm = session.run(PhasedWorkload::single_phase(graph.clone(), 3)).unwrap().time.seconds();
    let t_stacked = simulate(&machine, &graph, &ExecutionScenario::bound(&machine, stacked), 3).total_time;
    assert!(t_tm < t_stacked);
}
