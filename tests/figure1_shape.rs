//! Integration test of the evaluation pipeline: the simulated Figure 1 must
//! have the paper's shape — the topology-bound ORWL implementation wins, by
//! roughly the reported factors, and the non-topology-aware implementations
//! stop scaling beyond a couple of sockets.

use orwl_bench::figure1::{figure1_sweep, headline};
use orwl_lk23::sim_model::{simulate_implementation, ImplKind, Lk23Workload};
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_topo::synthetic;

#[test]
fn figure1_full_machine_headline_is_in_the_paper_band() {
    let rows = figure1_sweep(&[24], 5, 42);
    let h = headline(&rows);
    assert_eq!(h.cores, 192);
    // Paper text: ≈11 s, ≈5× vs OpenMP, ≈2.8× vs NoBind.  We accept generous
    // bands around those (the substrate is a model, not the authors' SMP).
    assert!(h.orwl_bind_seconds > 2.0 && h.orwl_bind_seconds < 40.0, "bind {h:?}");
    assert!(h.speedup_vs_openmp > 3.0 && h.speedup_vs_openmp < 8.0, "{h:?}");
    assert!(h.speedup_vs_nobind > 1.8 && h.speedup_vs_nobind < 4.5, "{h:?}");
}

#[test]
fn ordering_holds_across_the_whole_sweep() {
    let rows = figure1_sweep(&[1, 2, 4, 12, 24], 3, 7);
    for r in &rows {
        assert!(r.orwl_bind <= r.orwl_nobind * 1.05, "{r:?}");
        assert!(r.orwl_nobind <= r.openmp * 1.05, "{r:?}");
    }
    // The gap widens with the number of sockets (the paper's observation
    // that standard approaches fail beyond one or two sockets).
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!(last.speedup_vs_openmp() > first.speedup_vs_openmp());
    assert!(last.speedup_vs_nobind() > first.speedup_vs_nobind());
}

#[test]
fn bind_scaling_is_close_to_linear_in_sockets() {
    let rows = figure1_sweep(&[2, 8], 3, 9);
    let t2 = rows[0].orwl_bind;
    let t8 = rows[1].orwl_bind;
    // 4× more cores: at least 2.5× faster for the topology-aware version.
    assert!(t8 < t2 / 2.5, "bind does not scale: 16 cores {t2}, 64 cores {t8}");
}

#[test]
fn openmp_is_dominated_by_master_node_memory_traffic() {
    // The simulator must attribute OpenMP's penalty to cross-node traffic,
    // not to a generic slowdown: the report's cross-node byte count for the
    // OpenMP scenario dwarfs the bound scenario's.
    let machine = SimMachine::new(synthetic::cluster2016_subset(8).unwrap(), CostParams::cluster2016());
    let w = Lk23Workload::new(8192, 8, 8, 3);
    let bind = simulate_implementation(&machine, &w, ImplKind::OrwlBind, 1);
    let openmp = simulate_implementation(&machine, &w, ImplKind::OpenMp, 1);
    assert!(openmp.cross_node_bytes > bind.cross_node_bytes * 5.0);
    assert!(openmp.breakdown.barrier > 0.0);
    assert_eq!(bind.breakdown.barrier, 0.0);
}
