//! End-to-end acceptance of the cluster subsystem (ISSUE 3): on
//! rotating-sweep workloads across ≥ 4 simulated nodes,
//! `Policy::Hierarchical` must yield strictly lower inter-node hop-bytes
//! than Scatter and no worse total hop-bytes than flat TreeMatch on the
//! flattened topology — all through the unchanged `Session::builder()`
//! surface.

use orwl_repro::{AdaptiveSpec, ClusterBackend, ClusterMachine, Mode, PhasedWorkload, Policy, Session};

const NODES: usize = 4;

fn machine() -> ClusterMachine {
    ClusterMachine::paper(NODES) // 4 nodes × 2 sockets × 8 cores
}

fn session(policy: Policy, mode: Mode) -> Session {
    Session::builder()
        .topology(machine().topology().clone())
        .policy(policy)
        .control_threads(0)
        .mode(mode)
        .backend(ClusterBackend::new(machine()))
        .build()
        .expect("the cluster backend plugs into the unchanged builder surface")
}

fn rotating_sweep(phases: &[usize]) -> PhasedWorkload {
    // 64 tasks (one per PU), heavy east-west halos rotating to north-south.
    PhasedWorkload::rotating_stencil(8, 65536.0, 1024.0, 16384.0, 131072.0, phases)
}

#[test]
fn hierarchical_beats_scatter_on_inter_node_hop_bytes() {
    let w = rotating_sweep(&[20]);
    let hier = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
    let scatter = session(Policy::Scatter, Mode::Static).run(w).unwrap();
    let (hf, sf) = (hier.fabric.unwrap(), scatter.fabric.unwrap());
    assert_eq!(hf.n_nodes, NODES);
    assert!(
        hf.inter_node_hop_bytes < sf.inter_node_hop_bytes,
        "hierarchical inter-node hop-bytes {} must be strictly below scatter's {}",
        hf.inter_node_hop_bytes,
        sf.inter_node_hop_bytes
    );
    // The fabric-aware partition also wins on the simulated clock.
    assert!(hier.time.seconds() < scatter.time.seconds());
}

#[test]
fn hierarchical_is_no_worse_than_flat_treematch_on_total_hop_bytes() {
    let w = rotating_sweep(&[20]);
    let hier = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
    let flat = session(Policy::TreeMatch, Mode::Static).run(w).unwrap();
    assert!(
        hier.hop_bytes <= flat.hop_bytes + 1e-9,
        "hierarchical total hop-bytes {} must not exceed flat TreeMatch's {}",
        hier.hop_bytes,
        flat.hop_bytes
    );
    // And it must not buy that with more fabric traffic either.
    let (hf, ff) = (hier.fabric.unwrap(), flat.fabric.unwrap());
    assert!(hf.inter_node_hop_bytes <= ff.inter_node_hop_bytes + 1e-9);
}

#[test]
fn the_builder_surface_is_unchanged_beyond_the_new_variants() {
    // Same builder calls, three backends: only the backend / policy
    // variants differ.  The report shape is the unified one.
    let report = session(Policy::Hierarchical, Mode::Static).run(rotating_sweep(&[4])).unwrap();
    assert_eq!(report.backend, "cluster");
    assert_eq!(report.mode, "static");
    assert_eq!(report.plan.policy, Policy::Hierarchical);
    assert!(report.hop_bytes > 0.0);
    assert!(report.breakdown.cross_node >= 0.0);
    assert!(report.thread.is_none());
    // The static per-iteration split agrees with the cumulative one on a
    // single-phase run: same inter/intra proportions.
    let fabric = report.fabric.unwrap();
    let static_split = report.breakdown.cross_node / report.breakdown.total();
    assert!((static_split > 0.0) == (fabric.inter_node_hop_bytes > 0.0));
}

#[test]
fn adaptive_cluster_mode_reshards_and_beats_static_on_drift() {
    let w = rotating_sweep(&[12, 100]);
    let fixed = session(Policy::Hierarchical, Mode::Static).run(w.clone()).unwrap();
    let oracle = session(Policy::Hierarchical, Mode::Oracle).run(w.clone()).unwrap();
    let adaptive =
        session(Policy::Hierarchical, Mode::Adaptive(AdaptiveSpec::per_iterations(4))).run(w).unwrap();
    let adapt = adaptive.adapt.expect("adaptive runs report counters");
    assert!(adapt.replacements >= 1);
    assert!(adapt.node_reshards >= 1, "the rotation must trigger node-level re-sharding: {adapt:?}");
    assert!(adaptive.hop_bytes < fixed.hop_bytes);
    assert!(oracle.hop_bytes <= adaptive.hop_bytes + 1e-9);
}

#[test]
fn acceptance_holds_across_node_counts() {
    for nodes in [2usize, 4, 8] {
        let machine = ClusterMachine::paper(nodes);
        let tasks_side = 2 * nodes; // keeps tasks ≥ nodes as the cluster grows
        let w = PhasedWorkload::rotating_stencil(tasks_side, 65536.0, 1024.0, 16384.0, 131072.0, &[6]);
        let mk = |policy: Policy| {
            Session::builder()
                .topology(machine.topology().clone())
                .policy(policy)
                .control_threads(0)
                .backend(ClusterBackend::new(machine.clone()))
                .build()
                .unwrap()
                .run(w.clone())
                .unwrap()
        };
        let hier = mk(Policy::Hierarchical);
        let scatter = mk(Policy::Scatter);
        let flat = mk(Policy::TreeMatch);
        let (hf, sf) = (hier.fabric.unwrap(), scatter.fabric.unwrap());
        assert!(
            hf.inter_node_hop_bytes < sf.inter_node_hop_bytes,
            "{nodes} nodes: hierarchical {} vs scatter {}",
            hf.inter_node_hop_bytes,
            sf.inter_node_hop_bytes
        );
        assert!(
            hier.hop_bytes <= flat.hop_bytes + 1e-9,
            "{nodes} nodes: hierarchical {} vs flat treematch {}",
            hier.hop_bytes,
            flat.hop_bytes
        );
    }
}
