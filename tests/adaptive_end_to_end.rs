//! End-to-end tests of the `orwl-adapt` subsystem.
//!
//! * On the simulated machine: the acceptance criterion — the adaptive
//!   policy on a phase-changing workload accumulates strictly fewer
//!   hop-bytes than the static TreeMatch placement computed from the
//!   initial phase, and lands within 10% of an oracle that re-maps for
//!   free at the phase boundary.
//! * On the real event runtime: a drifting program drives the whole loop —
//!   monitoring hooks → online matrix → drift detection → re-placement →
//!   cooperative re-binding of live task threads.

use orwl_adapt::backend::SimBackend;
use orwl_adapt::drift::DriftConfig;
use orwl_adapt::engine::{adaptive_session_spec, AdaptConfig, AdaptiveEngine};
use orwl_adapt::replace::{MigrationCostModel, ReplacerConfig};
use orwl_core::prelude::*;
use orwl_core::Location;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::binding::RecordingBinder;
use orwl_topo::synthetic;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn adaptive_beats_static_and_stays_within_ten_percent_of_oracle() {
    let machine = SimMachine::new(synthetic::cluster2016_subset(2).unwrap(), CostParams::cluster2016());
    // 16 tasks; heavy east-west sweep for 24 iterations, then the sweep
    // rotates 90° for 200 iterations.  The adaptive driver does not know
    // where the boundary is.
    let workload = PhasedWorkload::rotating_stencil(4, 65536.0, 1024.0, 16384.0, 131072.0, &[24, 200]);
    let adapt = AdaptConfig::evaluation();

    // One builder, three run modes, one report type.
    let run = |mode: Mode| {
        Session::builder()
            .topology(machine.topology().clone())
            .policy(Policy::TreeMatch)
            .control_threads(0)
            .mode(mode)
            .backend(SimBackend::new(machine.clone()).with_adapt_config(adapt))
            .build()
            .unwrap()
            .run(workload.clone())
            .unwrap()
    };
    let fixed = run(Mode::Static);
    let oracle = run(Mode::Oracle);
    let adaptive = run(Mode::Adaptive(AdaptiveSpec::per_iterations(4)));

    let counters = adaptive.adapt.as_ref().expect("adaptive runs report counters");
    assert!(counters.replacements >= 1, "the phase change must be acted on: {counters:?}");
    assert!(
        adaptive.hop_bytes < fixed.hop_bytes,
        "adaptive hop-bytes {} must be strictly below static {}",
        adaptive.hop_bytes,
        fixed.hop_bytes,
    );
    assert!(oracle.hop_bytes <= adaptive.hop_bytes + 1e-9);
    let ratio = adaptive.hop_bytes / oracle.hop_bytes;
    assert!(ratio <= 1.10, "adaptive must be within 10% of the free-remap oracle, got {ratio:.4}");
    // The time model agrees with the metric: adapting is also faster.
    assert!(adaptive.time.seconds() < fixed.time.seconds());
}

/// A paired-exchange program: task `t` writes its own buffer every
/// iteration and reads a partner's.  For the first `phase1` iterations the
/// partner is the declared one (`t XOR 1`, which TreeMatch co-locates);
/// afterwards every task switches to `(t + 2) % n`, crossing all the
/// original pairs.
///
/// The partner switch is a *re-initialisation phase* in the ORWL sense:
/// every task posts its new read request between two barriers, before any
/// writer advances past the boundary.  Posting mid-run without that fence
/// can land a read request one write too late on every edge of a partner
/// cycle — a circular wait (readers wait for the writers' *next*
/// iteration, writers wait for their own readers).
fn drifting_program(
    n: usize,
    phase1: u64,
    phase2: u64,
    pace: Duration,
) -> (OrwlProgram, Vec<Arc<Location<u64>>>) {
    let locs: Vec<_> = (0..n).map(|i| Location::new(format!("pair-{i}"), 0u64)).collect();
    let rendezvous = Arc::new(std::sync::Barrier::new(n));
    let mut program = OrwlProgram::new();
    for t in 0..n {
        let own = Arc::clone(&locs[t]);
        let first = Arc::clone(&locs[t ^ 1]);
        let second = Arc::clone(&locs[(t + 2) % n]);
        let rendezvous = Arc::clone(&rendezvous);
        let links =
            vec![LocationLink::write(locs[t].id(), 4096.0), LocationLink::read(locs[t ^ 1].id(), 4096.0)];
        program.add_task(TaskSpec::new(format!("pair-task-{t}"), links), move |_ctx| {
            // Deterministic init: every request is posted before any task
            // starts acquiring, so no reader can land behind a write it
            // will never outwait.
            let mut write = own.iterative_handle(AccessMode::Write);
            write.request().unwrap();
            let mut read1 = first.iterative_handle(AccessMode::Read);
            read1.request().unwrap();
            rendezvous.wait();
            for i in 0..phase1 {
                *write.acquire().unwrap() = i;
                let _ = *read1.acquire().unwrap();
                std::thread::sleep(pace);
            }
            drop(read1);
            rendezvous.wait();
            let mut read2 = second.iterative_handle(AccessMode::Read);
            read2.request().unwrap();
            rendezvous.wait();
            for i in 0..phase2 {
                *write.acquire().unwrap() = phase1 + i;
                let _ = *read2.acquire().unwrap();
                std::thread::sleep(pace);
            }
        });
    }
    (program, locs)
}

#[test]
fn real_runtime_detects_drift_and_rebinds_live_threads() {
    let n = 16;
    let engine = AdaptiveEngine::new(AdaptConfig {
        decay: 0.0,
        drift: DriftConfig { threshold: 0.10, patience: 1, cooldown: 1 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 1.0 },
            horizon_epochs: 50.0,
            min_relative_gain: 0.0,
        },
    });
    let binder = Arc::new(RecordingBinder::new());
    let session = Session::builder()
        .topology(synthetic::cluster2016_subset(4).unwrap())
        .binder(binder.clone())
        .adaptive(adaptive_session_spec(Arc::clone(&engine), Duration::from_millis(15)))
        .backend(ThreadBackend)
        .build()
        .unwrap();

    let (program, locs) = drifting_program(n, 120, 400, Duration::from_micros(300));
    let report = session.run(program).unwrap();

    // The workload ran to completion under adaptation.
    assert_eq!(report.thread.as_ref().unwrap().stats.tasks_finished, n as u64);
    for loc in &locs {
        assert_eq!(loc.snapshot(), 120 + 400 - 1);
    }

    // The adaptive machinery engaged: epochs elapsed, the phase change was
    // detected and acted on, and live threads actually re-bound.
    let adapt = report.adapt.expect("adaptive runs report adapt counters");
    assert!(adapt.epochs >= 3, "report: {adapt:?}");
    assert!(
        adapt.replacements >= 1,
        "no re-placement was published: {adapt:?}; timeline: {:?}",
        engine.timeline()
    );
    assert!(adapt.rebinds_applied >= 1, "no thread ever re-bound: {adapt:?}");
    assert!(engine.migrations() >= 1);

    // The published placement is valid for the topology and the binder saw
    // both the initial bindings and the re-bindings.
    let placement = engine.current_placement();
    placement.validate_against(&synthetic::cluster2016_subset(4).unwrap()).unwrap();
    assert!(binder.anonymous_bindings().len() >= n + adapt.rebinds_applied as usize);
}

#[test]
fn non_adaptive_runs_report_no_adapt_counters() {
    let (program, _locs) = drifting_program(4, 3, 3, Duration::ZERO);
    let session = Session::builder()
        .topology(synthetic::laptop())
        .policy(Policy::NoBind)
        .backend(ThreadBackend)
        .build()
        .unwrap();
    let report = session.run(program).unwrap();
    assert!(report.adapt.is_none());
}
