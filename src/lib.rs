//! # orwl-repro — umbrella crate
//!
//! Reproduction of *"Optimizing Locality by Topology-aware Placement for a
//! Task Based Programming Model"* (Gustedt, Jeannot, Mansouri — IEEE CLUSTER
//! 2016) as a Rust workspace.  This crate re-exports the workspace members
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! | Crate | Role |
//! |---|---|
//! | [`orwl_topo`] | hardware topology model (HWLOC substitute), cpusets, binding |
//! | [`orwl_comm`] | communication matrices, workload patterns, locality metrics |
//! | [`orwl_treematch`] | Algorithm 1 (TreeMatch + control-thread and oversubscription extensions), baseline policies |
//! | [`orwl_numasim`] | discrete-event NUMA machine simulator (substitute for the 192-core testbed) |
//! | [`orwl_core`] | the ORWL runtime (locations, FIFOs, handles, tasks, event runtime, placement add-on) |
//! | [`orwl_lk23`] | Livermore Kernel 23: sequential, OpenMP-like, ORWL, simulator models |
//! | [`orwl_bench`] | experiment harness regenerating Figure 1 and the ablations |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use orwl_bench;
pub use orwl_comm;
pub use orwl_core;
pub use orwl_lk23;
pub use orwl_numasim;
pub use orwl_topo;
pub use orwl_treematch;

/// Human-readable version banner used by the examples.
pub fn banner() -> String {
    format!(
        "orwl-repro {} — ORWL topology-aware placement reproduction (CLUSTER 2016)",
        env!("CARGO_PKG_VERSION")
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_mentions_the_paper_venue() {
        let b = super::banner();
        assert!(b.contains("CLUSTER 2016"));
        assert!(b.contains(env!("CARGO_PKG_VERSION")));
    }
}
