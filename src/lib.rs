//! # orwl-repro — umbrella crate
//!
//! Reproduction of *"Optimizing Locality by Topology-aware Placement for a
//! Task Based Programming Model"* (Gustedt, Jeannot, Mansouri — IEEE CLUSTER
//! 2016) as a Rust workspace.  This crate re-exports the workspace members
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! | Crate | Role |
//! |---|---|
//! | [`orwl_topo`] | hardware topology model (HWLOC substitute), cpusets, binding |
//! | [`orwl_comm`] | communication matrices, workload patterns, locality metrics |
//! | [`orwl_treematch`] | Algorithm 1 (TreeMatch + control-thread and oversubscription extensions), baseline policies |
//! | [`orwl_numasim`] | discrete-event NUMA machine simulator (substitute for the 192-core testbed) |
//! | [`orwl_core`] | the ORWL runtime (locations, FIFOs, handles, tasks, event runtime, placement add-on, the `Session` API) |
//! | [`orwl_adapt`] | online monitoring, drift detection, adaptive re-placement, the simulator backend |
//! | [`orwl_cluster`] | hierarchical multi-node backend: two-level placement, fabric-coupled simulator |
//! | [`orwl_proc`] | multi-process cluster backend: real worker processes, the ORWL lock protocol over sockets |
//! | [`orwl_lab`] | experiment subsystem: scenario DSL, trace capture/replay, sweep runner, JSON reporting |
//! | [`orwl_lk23`] | Livermore Kernel 23: sequential, OpenMP-like, ORWL, simulator models |
//! | [`orwl_bench`] | experiment harness regenerating Figure 1 and the ablations |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## The front door
//!
//! The whole pipeline is driven through one API, re-exported here: build a
//! [`Session`] (topology, policy, control threads, run mode, backend) and
//! [`run`](Session::run) a workload on it.  [`ThreadBackend`] executes real
//! ORWL programs on the event runtime; [`SimBackend`] executes phased
//! task-graph workloads on the simulated NUMA machine; [`ClusterBackend`]
//! executes them on a simulated multi-node cluster with two-level
//! topology-aware placement; [`ProcBackend`] executes them as real worker
//! processes speaking the ORWL lock protocol over sockets.  All four
//! return the same [`Report`].

pub use orwl_adapt;
pub use orwl_bench;
pub use orwl_cluster;
pub use orwl_comm;
pub use orwl_core;
pub use orwl_lab;
pub use orwl_lk23;
pub use orwl_numasim;
pub use orwl_proc;
pub use orwl_topo;
pub use orwl_treematch;

pub use orwl_adapt::backend::SimBackend;
pub use orwl_adapt::engine::{adaptive_session_spec, AdaptiveEngine};
pub use orwl_cluster::{ClusterBackend, ClusterMachine};
pub use orwl_core::error::{ConfigError, OrwlError};
pub use orwl_core::json::{Json, ToJson};
pub use orwl_core::runtime::{AdaptReport, AdaptiveSpec};
pub use orwl_core::session::{
    ClusterTraffic, ExecutionBackend, Mode, Report, RunTime, Session, SessionBuilder, SessionConfig,
    ThreadBackend, ThreadDetails, Workload,
};
pub use orwl_core::task::OrwlProgram;
pub use orwl_lab::{ScenarioFamily, ScenarioSpec, SweepConfig, Trace};
pub use orwl_numasim::workload::PhasedWorkload;
pub use orwl_proc::ProcBackend;
pub use orwl_topo::cluster::ClusterTopology;
pub use orwl_treematch::policies::Policy;

/// Human-readable version banner used by the examples.
pub fn banner() -> String {
    format!(
        "orwl-repro {} — ORWL topology-aware placement reproduction (CLUSTER 2016)",
        env!("CARGO_PKG_VERSION")
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_mentions_the_paper_venue() {
        let b = super::banner();
        assert!(b.contains("CLUSTER 2016"));
        assert!(b.contains(env!("CARGO_PKG_VERSION")));
    }
}
