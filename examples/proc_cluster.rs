//! Multi-process cluster run: the dense stencil executed by real worker
//! processes speaking the ORWL lock protocol over sockets, with the
//! cluster simulator's prediction alongside the measured traffic.
//!
//! ```sh
//! cargo run --release --example proc_cluster            # 2 nodes
//! cargo run --release --example proc_cluster -- 4       # 4 nodes
//! cargo run --release --example proc_cluster -- 8       # 8 nodes
//! cargo run --release --example proc_cluster -- 2 --obs-dir obs_proc
//! ```
//!
//! For each placement policy the example spawns one worker process per
//! node, runs the stencil, and prints the inter-node bytes the workers
//! actually moved next to what the simulator predicted for the same
//! `policy_placement` sharding — the paper's locality claim, demonstrated
//! on real processes: `Hierarchical` must move no more bytes than
//! `Scatter`.
//!
//! With `--obs-dir DIR` the hierarchical proc run is observed: every
//! worker ships its telemetry back over the control socket and the merged
//! clock-aligned timeline lands in `DIR` as `merged.obs.json` (one
//! `orwl-obs/v1` document spanning every process), `node<k>.obs.json`
//! per worker track, and `merged.trace.json` (a Chrome trace with one
//! Perfetto process per track).  Feed `merged.obs.json` to the
//! `obs_report` bin for the contention table.
//!
//! With `--live` (optionally `--interval-ms N`, default 100) the
//! hierarchical run additionally streams telemetry *mid-run*: every
//! worker heartbeats each interval and ships an interval delta, and a
//! text ticker prints the per-node rates as they arrive, plus straggler
//! flags for nodes whose heartbeats stall:
//!
//! ```sh
//! cargo run --release --example proc_cluster -- 4 --live
//! cargo run --release --example proc_cluster -- 2 --live --interval-ms 50
//! ```
//!
//! Live runs use a longer schedule so the run spans many intervals; the
//! merged post-run document is identical either way (streamed deltas are
//! folded back into the final upload, deduplicated by event sequence).
//!
//! With `--kill NODE:MS` the hierarchical run doubles as a chaos drill:
//! worker `NODE` SIGKILLs itself `MS` milliseconds after Start (no
//! unwinding, no goodbye) and the coordinator must confirm the loss,
//! re-shard the dead node's tasks onto the survivors, and complete the
//! run degraded.  `--kill` implies `--live` (recovery rides the live
//! monitor) and prints a `[recover]` summary line; the hierarchical ≤
//! scatter traffic assertion is skipped because a degraded run's traffic
//! is not comparable:
//!
//! ```sh
//! cargo run --release --example proc_cluster -- 4 --kill 2:500
//! ```

use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_obs::export::{validate_chrome_trace, validate_obs};
use orwl_obs::merge::split_tracks;
use orwl_obs::{ObsConfig, RunTelemetry, ToJson};
use orwl_proc::{Fault, FaultPlan, LiveConfig, LiveEvent, RecoveryConfig};
use orwl_repro::{ClusterBackend, ClusterMachine, Policy, ProcBackend, Session};
use std::time::Duration;

fn session(
    machine: &ClusterMachine,
    policy: Policy,
    backend: impl orwl_repro::ExecutionBackend + 'static,
    observe: bool,
) -> Session {
    let mut builder = Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(backend);
    if observe {
        builder = builder.observe(ObsConfig::default());
    }
    builder.build().expect("the proc backend plugs into the unchanged builder surface")
}

/// Writes the merged timeline, its per-worker splits, and the Chrome
/// trace into `dir`, re-validating every artifact before it lands.
fn write_obs_artifacts(dir: &str, merged: &RunTelemetry) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let doc = merged.to_json();
    validate_obs(&doc).map_err(|e| format!("merged: invalid orwl-obs/v1 artifact: {e}"))?;
    std::fs::write(format!("{dir}/merged.obs.json"), doc.pretty())
        .map_err(|e| format!("cannot write {dir}/merged.obs.json: {e}"))?;
    let trace = merged.chrome_trace();
    validate_chrome_trace(&trace).map_err(|e| format!("merged: invalid Chrome trace: {e}"))?;
    std::fs::write(format!("{dir}/merged.trace.json"), trace.pretty())
        .map_err(|e| format!("cannot write {dir}/merged.trace.json: {e}"))?;
    for (info, telemetry) in split_tracks(merged) {
        if info.track == 0 {
            continue; // the coordinator's own events stay in the merged doc
        }
        let doc = telemetry.to_json();
        validate_obs(&doc).map_err(|e| format!("{}: invalid orwl-obs/v1 artifact: {e}", info.label))?;
        std::fs::write(format!("{dir}/{}.obs.json", info.label), doc.pretty())
            .map_err(|e| format!("cannot write {dir}/{}.obs.json: {e}", info.label))?;
    }
    Ok(())
}

/// The `--live` text ticker: one line per interval delta with that
/// node's rates, plus straggler / recovery / completion flags.
fn live_ticker(event: &LiveEvent) {
    match event {
        LiveEvent::Heartbeat { .. } => {}
        LiveEvent::Delta { node, bytes, stats } => {
            let fabric: u64 = stats.fabric_bytes.iter().sum();
            println!(
                "[live] node{node} interval: {} events, {} grants, lock-wait {:.2} ms, fabric {} B ({} B streamed)",
                stats.events,
                stats.grants,
                stats.lock_wait_ns as f64 / 1e6,
                fabric,
                bytes,
            );
        }
        LiveEvent::Straggler { node, silent_for, missed } => {
            println!(
                "[live] node{node} straggler: silent for {:.0} ms (~{missed} heartbeat intervals missed)",
                silent_for.as_secs_f64() * 1e3,
            );
        }
        LiveEvent::Recovered { node } => println!("[live] node{node} recovered"),
        LiveEvent::Done { node } => println!("[live] node{node} done"),
    }
}

fn main() {
    orwl_proc::maybe_worker(); // worker re-entry point: must run first

    let mut n_nodes: usize = 2;
    let mut obs_dir: Option<String> = None;
    let mut live = false;
    let mut interval_ms: u64 = 100;
    let mut iters: Option<usize> = None;
    let mut kill: Option<(usize, u64)> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--obs-dir" => obs_dir = Some(it.next().expect("--obs-dir expects a directory")),
            "--live" => live = true,
            "--interval-ms" => {
                interval_ms =
                    it.next().and_then(|v| v.parse().ok()).expect("--interval-ms expects a positive integer")
            }
            "--iters" => {
                iters =
                    Some(it.next().and_then(|v| v.parse().ok()).expect("--iters expects a positive integer"))
            }
            "--kill" => {
                let spec = it.next().expect("--kill expects NODE:MS");
                let (node, ms) = spec.split_once(':').expect("--kill expects NODE:MS");
                kill = Some((
                    node.parse().expect("--kill node must be an integer"),
                    ms.parse().expect("--kill delay must be in milliseconds"),
                ));
            }
            other => {
                n_nodes =
                    other.parse().expect("expected a node count, --live, --kill NODE:MS, or --obs-dir DIR")
            }
        }
    }
    // Recovery rides the live monitor, so a chaos drill is a live run.
    let live = live || kill.is_some();
    let machine = ClusterMachine::paper(n_nodes);
    let tasks = 16 * n_nodes;
    // Live runs default to a longer schedule so the run genuinely spans
    // several heartbeat intervals — the point is watching it mid-flight.
    let iterations = iters.unwrap_or(if live { 3000 } else { 2 });
    let spec = ScenarioSpec::new(ScenarioFamily::DenseStencil, tasks, 1).with_phases(vec![iterations]);
    println!("{}", orwl_repro::banner());
    println!(
        "proc backend: {} worker processes x {} PUs, {} tasks ({})",
        n_nodes,
        machine.cluster().pus_per_node(),
        spec.n_tasks(),
        spec.name(),
    );
    println!(
        "{:<14} {:>22} {:>22} {:>12}",
        "policy", "measured inter-node B", "predicted inter-node B", "wall ms"
    );

    let mut measured_by_policy = Vec::new();
    for policy in [Policy::Hierarchical, Policy::Scatter] {
        let predicted = session(&machine, policy, ClusterBackend::new(machine.clone()), false)
            .run(spec.workload())
            .expect("the simulator prices the same sharding")
            .fabric
            .expect("cluster reports carry the fabric split")
            .inter_node_bytes;
        let observed = (obs_dir.is_some() || live) && policy == Policy::Hierarchical;
        let mut backend = ProcBackend::new(machine.clone());
        if live && observed {
            backend = backend
                .with_live(LiveConfig::new(Duration::from_millis(interval_ms)).with_on_event(live_ticker));
        }
        if let (Some((node, after_ms)), true) = (kill, observed) {
            backend = backend
                .with_faults(FaultPlan::new().with(Fault::Sigkill { node, after_ms }))
                .with_recovery(RecoveryConfig::default());
        }
        let report = session(&machine, policy, backend, observed)
            .run(spec.workload())
            .expect("the multi-process run completes");
        if let (Some((node, _)), true) = (kill, observed) {
            let merged = report.obs.as_ref().expect("observed runs carry telemetry");
            let count =
                |name: &str| merged.metrics.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
            let adapt = report.adapt.as_ref().expect("a recovered run carries an adapt report");
            println!(
                "[recover] node {node} lost: {} reshard(s), {} task(s) migrated onto {} survivor(s); run completed degraded",
                adapt.node_reshards,
                count("live.tasks_migrated"),
                n_nodes - count("live.node_losses") as usize,
            );
        }
        if live && observed {
            let merged = report.obs.as_ref().expect("observed runs carry telemetry");
            let count =
                |name: &str| merged.metrics.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
            println!(
                "[live] summary: {} heartbeats, {} deltas ({} B streamed), {} straggler flags, {} duplicate deltas",
                count("live.heartbeats"),
                count("live.deltas"),
                count("live.delta_bytes"),
                count("live.stragglers_flagged"),
                count("live.duplicate_deltas"),
            );
        }
        if obs_dir.is_some() && observed {
            let dir = obs_dir.as_deref().expect("observed implies a directory");
            let merged = report.obs.as_ref().expect("observed runs carry telemetry");
            write_obs_artifacts(dir, merged).expect("telemetry artifacts validate and write");
            println!(
                "wrote {dir}/merged.obs.json (+{} per-node splits, +merged.trace.json): {} events across {} tracks",
                merged.tracks.len() - 1,
                merged.events.len(),
                merged.tracks.len(),
            );
        }
        let fabric = report.fabric.expect("proc reports carry the fabric split");
        println!(
            "{:<14} {:>22.0} {:>22.0} {:>12.1}",
            format!("{policy:?}"),
            fabric.inter_node_bytes,
            predicted,
            report.time.seconds() * 1e3,
        );
        measured_by_policy.push(fabric.inter_node_bytes);
    }

    let (hier, scatter) = (measured_by_policy[0], measured_by_policy[1]);
    if kill.is_some() {
        // A degraded run re-ran adopted tasks from scratch on fewer
        // nodes; its traffic is not comparable to the fault-free scatter.
        println!("hierarchical ran degraded (node loss injected); traffic comparison skipped");
        return;
    }
    assert!(
        hier <= scatter,
        "hierarchical placement must move no more bytes across processes than scatter ({hier} vs {scatter})"
    );
    println!("hierarchical moves {:.1}% of scatter's inter-process traffic", 100.0 * hier / scatter.max(1.0));
}
