//! Multi-process cluster run: the dense stencil executed by real worker
//! processes speaking the ORWL lock protocol over sockets, with the
//! cluster simulator's prediction alongside the measured traffic.
//!
//! ```sh
//! cargo run --release --example proc_cluster            # 2 nodes
//! cargo run --release --example proc_cluster -- 4       # 4 nodes
//! cargo run --release --example proc_cluster -- 8       # 8 nodes
//! ```
//!
//! For each placement policy the example spawns one worker process per
//! node, runs the stencil, and prints the inter-node bytes the workers
//! actually moved next to what the simulator predicted for the same
//! `policy_placement` sharding — the paper's locality claim, demonstrated
//! on real processes: `Hierarchical` must move no more bytes than
//! `Scatter`.

use orwl_lab::{ScenarioFamily, ScenarioSpec};
use orwl_repro::{ClusterBackend, ClusterMachine, Policy, ProcBackend, Session};

fn session(
    machine: &ClusterMachine,
    policy: Policy,
    backend: impl orwl_repro::ExecutionBackend + 'static,
) -> Session {
    Session::builder()
        .topology(machine.topology().clone())
        .policy(policy)
        .control_threads(0)
        .backend(backend)
        .build()
        .expect("the proc backend plugs into the unchanged builder surface")
}

fn main() {
    orwl_proc::maybe_worker(); // worker re-entry point: must run first

    let n_nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2);
    let machine = ClusterMachine::paper(n_nodes);
    let tasks = 16 * n_nodes;
    let spec = ScenarioSpec::new(ScenarioFamily::DenseStencil, tasks, 1).with_phases(vec![2]);
    println!("{}", orwl_repro::banner());
    println!(
        "proc backend: {} worker processes x {} PUs, {} tasks ({})",
        n_nodes,
        machine.cluster().pus_per_node(),
        spec.n_tasks(),
        spec.name(),
    );
    println!(
        "{:<14} {:>22} {:>22} {:>12}",
        "policy", "measured inter-node B", "predicted inter-node B", "wall ms"
    );

    let mut measured_by_policy = Vec::new();
    for policy in [Policy::Hierarchical, Policy::Scatter] {
        let predicted = session(&machine, policy, ClusterBackend::new(machine.clone()))
            .run(spec.workload())
            .expect("the simulator prices the same sharding")
            .fabric
            .expect("cluster reports carry the fabric split")
            .inter_node_bytes;
        let report = session(&machine, policy, ProcBackend::new(machine.clone()))
            .run(spec.workload())
            .expect("the multi-process run completes");
        let fabric = report.fabric.expect("proc reports carry the fabric split");
        println!(
            "{:<14} {:>22.0} {:>22.0} {:>12.1}",
            format!("{policy:?}"),
            fabric.inter_node_bytes,
            predicted,
            report.time.seconds() * 1e3,
        );
        measured_by_policy.push(fabric.inter_node_bytes);
    }

    let (hier, scatter) = (measured_by_policy[0], measured_by_policy[1]);
    assert!(
        hier <= scatter,
        "hierarchical placement must move no more bytes across processes than scatter ({hier} vs {scatter})"
    );
    println!("hierarchical moves {:.1}% of scatter's inter-process traffic", 100.0 * hier / scatter.max(1.0));
}
