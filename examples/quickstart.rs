//! Quickstart: the ORWL model in a few dozen lines.
//!
//! Builds a tiny ORWL program (four tasks incrementing a shared counter and
//! exchanging tokens around a ring), runs it twice — once unbound, once with
//! the topology-aware placement — and prints the placement and the runtime
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use orwl_core::prelude::*;
use orwl_core::Location;
use std::sync::Arc;

fn build_program(n_tasks: usize, iterations: u64) -> (OrwlProgram, Arc<Location<u64>>) {
    let counter = Location::new("counter", 0u64);
    // A ring of token locations so that tasks really communicate.
    let tokens: Vec<_> = (0..n_tasks).map(|i| Location::new(format!("token-{i}"), 0u64)).collect();

    let mut program = OrwlProgram::new();
    for t in 0..n_tasks {
        let counter_loc = Arc::clone(&counter);
        let my_token = Arc::clone(&tokens[t]);
        let prev_token = Arc::clone(&tokens[(t + n_tasks - 1) % n_tasks]);
        let links = vec![
            LocationLink::write(counter.id(), 8.0),
            LocationLink::write(tokens[t].id(), 8.0),
            LocationLink::read(tokens[(t + n_tasks - 1) % n_tasks].id(), 8.0),
        ];
        program.add_task(TaskSpec::new(format!("worker-{t}"), links), move |ctx| {
            let mut counter_h = counter_loc.iterative_handle(AccessMode::Write);
            let mut write_h = my_token.iterative_handle(AccessMode::Write);
            let mut read_h = prev_token.iterative_handle(AccessMode::Read);
            for i in 0..iterations {
                *counter_h.acquire().unwrap() += 1;
                *write_h.acquire().unwrap() = i;
                let _seen = *read_h.acquire().unwrap();
            }
            ctx.stats.record_acquisitions(3 * iterations);
        });
    }
    (program, counter)
}

fn run_with(label: &str, config: RuntimeConfig) {
    let (program, counter) = build_program(4, 1_000);
    let runtime = OrwlRuntime::new(config);
    let report = runtime.run(program).expect("program runs to completion");
    println!("--- {label} ---");
    println!("counter value        : {}", counter.snapshot());
    println!("wall time            : {:?}", report.wall_time);
    println!("lock acquisitions    : {}", report.stats.lock_acquisitions);
    println!("control events       : {}", report.stats.control_events);
    println!("bound compute threads: {:.0}%", 100.0 * report.plan.placement.bound_fraction());
    println!("communication matrix : order {}", report.plan.matrix.order());
    println!("placement:\n{}", report.plan.placement);
}

fn main() {
    println!("{}\n", orwl_repro::banner());
    let topo = orwl_topo::discover::discover();
    println!("host topology: {} ({} PUs, {} cores)\n", topo.name(), topo.nb_pus(), topo.nb_cores());

    // The paper's two ORWL configurations.
    run_with("ORWL NoBind", RuntimeConfig::no_bind(topo.clone()));
    run_with("ORWL Bind (TreeMatch)", RuntimeConfig::bind(topo));
}
