//! Quickstart: the ORWL model in a few dozen lines.
//!
//! Builds a tiny ORWL program (four tasks incrementing a shared counter and
//! exchanging tokens around a ring), runs it twice — once unbound, once with
//! the topology-aware placement — and prints the placement and the runtime
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use orwl_core::prelude::*;
use orwl_core::{Handle, Location};
use std::sync::Arc;

fn build_program(n_tasks: usize, iterations: u64) -> (OrwlProgram, Arc<Location<u64>>) {
    let counter = Location::new("counter", 0u64);
    // A ring of token locations so that tasks really communicate.
    let tokens: Vec<_> = (0..n_tasks).map(|i| Location::new(format!("token-{i}"), 0u64)).collect();

    // Deterministic initialisation phase (the ORWL model's "init" step):
    // post every request before any task thread runs — writers first, then
    // readers — so each location's schedule alternates write → read from
    // the start.  Posting lazily from racing threads can order a reader
    // behind a writer's *next* request, which deadlocks once that writer
    // finishes and parks.
    let mut counter_handles: Vec<Handle<u64>> = Vec::with_capacity(n_tasks);
    let mut write_handles: Vec<Handle<u64>> = Vec::with_capacity(n_tasks);
    let mut read_handles: Vec<Handle<u64>> = Vec::with_capacity(n_tasks);
    for token in &tokens {
        let mut h = counter.iterative_handle(AccessMode::Write);
        h.request().expect("fresh handle has no pending request");
        counter_handles.push(h);
        let mut h = token.iterative_handle(AccessMode::Write);
        h.request().expect("fresh handle has no pending request");
        write_handles.push(h);
    }
    for t in 0..n_tasks {
        let mut h = tokens[(t + n_tasks - 1) % n_tasks].iterative_handle(AccessMode::Read);
        h.request().expect("fresh handle has no pending request");
        read_handles.push(h);
    }

    let mut program = OrwlProgram::new();
    let handles = counter_handles.into_iter().zip(write_handles).zip(read_handles);
    for (t, ((mut counter_h, mut write_h), mut read_h)) in handles.enumerate() {
        let links = vec![
            LocationLink::write(counter.id(), 8.0),
            LocationLink::write(tokens[t].id(), 8.0),
            LocationLink::read(tokens[(t + n_tasks - 1) % n_tasks].id(), 8.0),
        ];
        program.add_task(TaskSpec::new(format!("worker-{t}"), links), move |ctx| {
            for i in 0..iterations {
                *counter_h.acquire().unwrap() += 1;
                *write_h.acquire().unwrap() = i;
                let _seen = *read_h.acquire().unwrap();
            }
            ctx.stats.record_acquisitions(3 * iterations);
        });
    }
    (program, counter)
}

fn run_with(label: &str, topo: orwl_topo::topology::Topology, policy: Policy) {
    let (program, counter) = build_program(4, 1_000);
    // The one front door: a Session over the real thread runtime.
    let session = Session::builder()
        .topology(topo)
        .policy(policy)
        .control_threads(1)
        .backend(ThreadBackend)
        .build()
        .expect("the quickstart configuration is valid");
    let report = session.run(program).expect("program runs to completion");
    let thread = report.thread.as_ref().expect("thread backend reports details");
    println!("--- {label} ---");
    println!("counter value        : {}", counter.snapshot());
    println!("wall time            : {:?}", report.time.as_wall().unwrap());
    println!("lock acquisitions    : {}", thread.stats.lock_acquisitions);
    println!("control events       : {}", thread.stats.control_events);
    println!("bound compute threads: {:.0}%", 100.0 * report.plan.placement.bound_fraction());
    println!("communication matrix : order {}", report.plan.matrix.order());
    println!("NUMA-local traffic   : {:.1}%", 100.0 * report.breakdown.local_fraction());
    println!("placement:\n{}", report.plan.placement);
}

fn main() {
    println!("{}\n", orwl_repro::banner());
    let topo = orwl_topo::discover::discover();
    println!("host topology: {} ({} PUs, {} cores)\n", topo.name(), topo.nb_pus(), topo.nb_cores());

    // The paper's two ORWL configurations.
    run_with("ORWL NoBind", topo.clone(), Policy::NoBind);
    run_with("ORWL Bind (TreeMatch)", topo, Policy::TreeMatch);
}
