//! Full regeneration of Figure 1 on the simulated 24-socket machine.
//!
//! Sweeps the number of sockets (8 → 192 cores), simulates the three LK23
//! implementations with the paper's workload (16384² doubles, 100
//! iterations), prints the figure as a table + CSV, and reports the headline
//! speedups the paper quotes (≈5× vs OpenMP, ≈2.8× vs ORWL NoBind, ≈11 s for
//! the bound version at 192 cores).
//!
//! ```text
//! cargo run --release --example figure1_sim [iterations]
//! ```

use orwl_bench::figure1::{default_socket_counts, figure1_sweep, headline, render_csv, render_table};

fn main() {
    let iterations: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(20);
    println!("{}", orwl_repro::banner());
    println!(
        "Figure 1 reproduction: LK23 16384x16384, 100 iterations (simulated via {iterations} steady-state iterations), 24x8-core SMP\n"
    );

    let rows = figure1_sweep(&default_socket_counts(), iterations, 42);
    println!("{}", render_table(&rows));

    let h = headline(&rows);
    println!("headline at {} cores:", h.cores);
    println!("  ORWL Bind processing time : {:>6.1} s   (paper: ~11 s)", h.orwl_bind_seconds);
    println!("  speedup vs OpenMP         : {:>6.2}     (paper: ~5)", h.speedup_vs_openmp);
    println!("  speedup vs ORWL NoBind    : {:>6.2}     (paper: ~2.8)", h.speedup_vs_nobind);

    println!("\nCSV:\n{}", render_csv(&rows));
}
