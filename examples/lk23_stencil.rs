//! Livermore Kernel 23 on the real ORWL runtime.
//!
//! Runs the block-decomposed LK23 on the host machine with both the unbound
//! and the topology-aware configurations, verifies the result against the
//! sequential reference, and prints the placement's locality breakdown —
//! the real-execution counterpart of the simulated Figure 1 (absolute times
//! on a laptop/container say nothing about NUMA, but correctness and the
//! extracted communication structure are exercised end to end).
//!
//! ```text
//! cargo run --release --example lk23_stencil [grid_size] [blocks_per_side] [iterations]
//! ```

use orwl_core::prelude::*;
use orwl_lk23::blocks::BlockDecomposition;
use orwl_lk23::kernel::{reference_jacobi, Grid};
use orwl_lk23::openmp_like::run_openmp_like;
use orwl_lk23::orwl_impl::run_orwl;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(192);
    let blocks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!("{}", orwl_repro::banner());
    println!("LK23: {n}x{n} grid, {blocks}x{blocks} blocks, {iterations} iterations\n");

    let initial = Grid::initial(n, n);
    let reference = reference_jacobi(&initial, iterations);
    let decomp = BlockDecomposition::new(n, n, blocks, blocks).expect("valid decomposition");
    let topo = orwl_topo::discover::discover();

    // OpenMP-like baseline (fork-join over row bands).
    let t0 = std::time::Instant::now();
    let openmp = run_openmp_like(&initial, iterations, topo.nb_pus());
    let openmp_time = t0.elapsed();
    println!(
        "openmp-like  : {:>10.3?}  max|diff| vs reference = {:.3e}",
        openmp_time,
        openmp.max_abs_diff(&reference)
    );

    for (label, policy) in [("orwl-nobind", Policy::NoBind), ("orwl-bind   ", Policy::TreeMatch)] {
        let session = Session::builder()
            .topology(topo.clone())
            .policy(policy)
            .backend(ThreadBackend)
            .build()
            .expect("the LK23 configuration is valid");
        let t0 = std::time::Instant::now();
        let (result, report) = run_orwl(&initial, decomp, iterations, &session).expect("orwl run");
        let elapsed = t0.elapsed();
        println!(
            "{label}: {:>10.3?}  max|diff| vs reference = {:.3e}  bound = {:>3.0}%  NUMA-local traffic = {:>5.1}%",
            elapsed,
            result.max_abs_diff(&reference),
            100.0 * report.plan.placement.bound_fraction(),
            100.0 * report.breakdown.local_fraction(),
        );
    }

    println!("\nAll implementations verified against the sequential Jacobi reference.");
}
