//! Multi-node sweep: the rotating-sweep stencil on a simulated cluster,
//! comparing placement policies and run modes through the one `Session`
//! front door.
//!
//! ```sh
//! cargo run --release --example cluster_sweep            # 4 nodes
//! cargo run --release --example cluster_sweep -- 8       # 8 nodes
//! ```
//!
//! Prints, per policy: total and inter-node hop-bytes, the inter-node
//! fraction, and the simulated time — then the static/adaptive/oracle
//! comparison under drift for the hierarchical policy.

use orwl_repro::{AdaptiveSpec, ClusterBackend, ClusterMachine, Mode, PhasedWorkload, Policy, Session};

fn main() {
    let n_nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let machine = ClusterMachine::paper(n_nodes);
    println!("{}", orwl_repro::banner());
    println!(
        "cluster: {} nodes x {} PUs ({} total), fabric {:.1} GB/s aggregate\n",
        n_nodes,
        machine.cluster().pus_per_node(),
        machine.n_pus(),
        machine.fabric().aggregate_bandwidth / 1e9,
    );

    let session = |policy: Policy, mode: Mode| {
        Session::builder()
            .topology(machine.topology().clone())
            .policy(policy)
            .control_threads(0)
            .mode(mode)
            .backend(ClusterBackend::new(machine.clone()))
            .build()
            .expect("valid cluster session")
    };

    // One task per PU, heavy east-west halos.
    let side = (machine.n_pus() as f64).sqrt().round() as usize;
    let steady = PhasedWorkload::rotating_stencil(side, 65536.0, 1024.0, 16384.0, 131072.0, &[40]);

    println!("policy        total hop-bytes   inter-node hop-bytes   inter%   sim time");
    for policy in [Policy::Hierarchical, Policy::TreeMatch, Policy::Scatter, Policy::Packed] {
        let report = session(policy, Mode::Static).run(steady.clone()).expect("run succeeds");
        let fabric = report.fabric.expect("cluster reports carry the fabric split");
        println!(
            "{:<12}  {:>15.4e}   {:>19.4e}   {:>5.1}%   {:.4} s",
            policy.name(),
            report.hop_bytes,
            fabric.inter_node_hop_bytes,
            100.0 * fabric.inter_node_fraction(),
            report.time.seconds(),
        );
    }

    // Drift: the sweep axis rotates a quarter of the way in.
    let drifting = PhasedWorkload::rotating_stencil(side, 65536.0, 1024.0, 16384.0, 131072.0, &[20, 140]);
    println!("\nrotating mid-run ({} tasks, phases 20+140), hierarchical policy:", side * side);
    for mode in [Mode::Static, Mode::Adaptive(AdaptiveSpec::per_iterations(4)), Mode::Oracle] {
        let report = session(Policy::Hierarchical, mode).run(drifting.clone()).expect("run succeeds");
        let reshards = report.adapt.as_ref().map_or(0, |a| a.node_reshards);
        let migrations = report.adapt.as_ref().map_or(0, |a| a.replacements);
        println!(
            "  {:<9} hop-bytes {:.4e}, time {:.4} s, migrations {}, node re-shards {}",
            report.mode,
            report.hop_bytes,
            report.time.seconds(),
            migrations,
            reshards,
        );
    }
}
