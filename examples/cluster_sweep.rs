//! Multi-node sweep: the rotating-sweep stencil on a simulated cluster,
//! comparing placement policies and run modes — now routed through the
//! `orwl-lab` sweep runner and JSON reporter instead of ad-hoc printing.
//!
//! ```sh
//! cargo run --release --example cluster_sweep            # 4 nodes
//! cargo run --release --example cluster_sweep -- 8       # 8 nodes
//! ```
//!
//! Prints the lab's sweep table (per policy: hop-bytes, inter-node share,
//! Scatter ratio; per mode under drift: migrations and node re-shards) and
//! writes the schema-checked `BENCH_cluster_sweep.json` artifact.

use orwl_lab::prelude::*;
use orwl_lab::sweep::SweepSection;
use orwl_repro::ClusterMachine;

fn main() {
    let n_nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let machine = ClusterMachine::paper(n_nodes);
    println!("{}", orwl_repro::banner());
    println!(
        "cluster: {} nodes x {} PUs ({} total), fabric {:.1} GB/s aggregate",
        n_nodes,
        machine.cluster().pus_per_node(),
        machine.n_pus(),
        machine.fabric().aggregate_bandwidth / 1e9,
    );

    let seed = 42;
    let cluster = BackendSpec::Cluster { nodes: n_nodes, oversubscription: 1 };
    let config = SweepConfig {
        seed,
        epoch_iterations: 4,
        thread_iterations: 1,
        sections: vec![
            // Steady state: one rotating-stencil phase, every policy.
            SweepSection {
                label: "steady",
                scenarios: vec![
                    ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, seed).with_phases(vec![40])
                ],
                backends: vec![cluster],
                policies: vec![Policy::Hierarchical, Policy::TreeMatch, Policy::Scatter, Policy::Packed],
                modes: vec![ModeKind::Static],
            },
            // Drift: the sweep axis rotates a quarter of the way in — the
            // static / adaptive / oracle comparison for the hierarchical
            // policy.
            SweepSection {
                label: "drift",
                scenarios: vec![
                    ScenarioSpec::new(ScenarioFamily::RotatedStencil, 16, seed).with_phases(vec![20, 140])
                ],
                backends: vec![cluster],
                policies: vec![Policy::Hierarchical],
                modes: vec![ModeKind::Static, ModeKind::Adaptive, ModeKind::Oracle],
            },
        ],
    };

    let result = run_sweep(&config).expect("cluster sweep runs");
    print!("{}", render_table(&result));

    let doc = sweep_to_json(&result);
    validate(&doc).expect("emitted document matches the schema");
    let out = "BENCH_cluster_sweep.json";
    std::fs::write(out, doc.pretty()).expect("artifact is writable");
    println!("\n{} rows -> {out} [{}]", result.rows.len(), SCHEMA_VERSION);
}
