//! Demo of the `orwl-adapt` subsystem, in two acts:
//!
//! 1. on the simulated machine, a directionally-swept stencil whose sweep
//!    axis rotates 90° mid-run, executed under three policies — the static
//!    initial TreeMatch placement, the online adaptive loop, and an oracle
//!    that re-maps for free at the phase boundary;
//! 2. on the **real event runtime**, a paired-exchange program that
//!    switches partners mid-run: the monitoring hooks, drift detector and
//!    cooperative thread re-binding do the whole loop live.
//!
//! Run with `cargo run --example adaptive_stencil --release`.

use orwl_adapt::drift::DriftConfig;
use orwl_adapt::engine::{adaptive_runtime_config, AdaptConfig, AdaptiveEngine};
use orwl_adapt::replace::{MigrationCostModel, ReplacerConfig};
use orwl_adapt::sim::{run_adaptive, run_oracle, run_static, PhasedWorkload, SimAdaptConfig};
use orwl_core::prelude::*;
use orwl_core::Location;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_topo::binding::RecordingBinder;
use orwl_topo::synthetic;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("{}", orwl_repro::banner());
    println!("adaptive re-placement on a rotating-sweep stencil (simulated 4-socket machine)\n");

    let machine = SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::cluster2016());
    let workload = PhasedWorkload::rotating_stencil(6, 65536.0, 1024.0, 16384.0, 131072.0, &[40, 280]);
    let config = SimAdaptConfig {
        epoch_iterations: 4,
        decay: 0.2,
        drift: DriftConfig { threshold: 0.15, patience: 1, cooldown: 2 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 131072.0 },
            horizon_epochs: 20.0,
            min_relative_gain: 0.05,
        },
    };

    println!(
        "workload: {} tasks, {} iterations, sweep rotates after {} iterations",
        workload.n_tasks(),
        workload.total_iterations(),
        workload.phases[0].iterations,
    );
    println!(
        "policy: epoch = {} iterations, drift threshold = {}, migration state = {} KiB/task\n",
        config.epoch_iterations,
        config.drift.threshold,
        config.replacer.model.task_state_bytes / 1024.0,
    );

    let fixed = run_static(&machine, &workload);
    let adaptive = run_adaptive(&machine, &workload, &config);
    let oracle = run_oracle(&machine, &workload);

    println!("{:<16} {:>18} {:>14} {:>12}", "policy", "cumulative hop-B", "sim time (s)", "migrations");
    for outcome in [&fixed, &adaptive, &oracle] {
        println!(
            "{:<16} {:>18.3e} {:>14.4} {:>12}",
            outcome.label, outcome.cumulative_hop_bytes, outcome.total_time, outcome.migrations
        );
    }

    let vs_static = 100.0 * (1.0 - adaptive.cumulative_hop_bytes / fixed.cumulative_hop_bytes);
    let vs_oracle = 100.0 * (adaptive.cumulative_hop_bytes / oracle.cumulative_hop_bytes - 1.0);
    println!("\nadaptive saves {vs_static:.1}% of the static placement's hop-bytes");
    println!("and is within {vs_oracle:.2}% of the free-remap oracle");
    if let Some(max_delta) =
        adaptive.drift_deltas.iter().cloned().fold(None::<f64>, |a, d| Some(a.map_or(d, |m| m.max(d))))
    {
        println!("largest per-epoch drift delta observed: {max_delta:.3}");
    }

    real_runtime_act();
}

/// Act 2: the same loop live on the event runtime.  Sixteen tasks exchange
/// with a declared partner for the first half of the run, then switch to a
/// different partner; the runtime detects the drift from its lock-grant
/// hooks and re-binds the running threads.
fn real_runtime_act() {
    println!("\n--- act 2: live adaptation on the event runtime ---");
    let n = 16usize;
    let engine = AdaptiveEngine::new(AdaptConfig {
        decay: 0.0,
        drift: DriftConfig { threshold: 0.10, patience: 1, cooldown: 1 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 1.0 },
            horizon_epochs: 50.0,
            min_relative_gain: 0.0,
        },
    });
    // A recording binder keeps the demo independent of the host's real CPU
    // count (the CI container has a single core).
    let binder = Arc::new(RecordingBinder::new());
    let config = adaptive_runtime_config(
        synthetic::cluster2016_subset(4).unwrap(),
        Arc::clone(&engine),
        Duration::from_millis(15),
    )
    .with_binder(binder.clone());

    let locs: Vec<_> = (0..n).map(|i| Location::new(format!("pair-{i}"), 0u64)).collect();
    let mut program = OrwlProgram::new();
    for t in 0..n {
        let own = Arc::clone(&locs[t]);
        let first = Arc::clone(&locs[t ^ 1]);
        let second = Arc::clone(&locs[(t + 2) % n]);
        let links =
            vec![LocationLink::write(locs[t].id(), 4096.0), LocationLink::read(locs[t ^ 1].id(), 4096.0)];
        program.add_task(TaskSpec::new(format!("pair-{t}"), links), move |_| {
            let mut write = own.iterative_handle(AccessMode::Write);
            let mut read = first.iterative_handle(AccessMode::Read);
            for i in 0..120u64 {
                *write.acquire().unwrap() = i;
                let _ = *read.acquire().unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
            drop(read);
            let mut read = second.iterative_handle(AccessMode::Read);
            for i in 0..400u64 {
                *write.acquire().unwrap() = 120 + i;
                let _ = *read.acquire().unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        });
    }

    let report = OrwlRuntime::new(config).run(program).expect("adaptive run completes");
    let adapt = report.adapt.expect("adaptive runs report counters");
    println!("{} tasks finished, wall time {:?}", report.stats.tasks_finished, report.wall_time);
    println!(
        "epochs: {}, re-placements published: {}, live thread re-bindings applied: {}",
        adapt.epochs, adapt.replacements, adapt.rebinds_applied
    );
    let fired: Vec<u64> = engine.timeline().iter().filter(|r| r.drift_fired).map(|r| r.epoch).collect();
    println!("drift fired at epoch(s): {fired:?}");
}
