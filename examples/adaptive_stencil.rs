//! Demo of the `orwl-adapt` subsystem through the unified `Session` API,
//! in two acts:
//!
//! 1. on the simulated machine, a directionally-swept stencil whose sweep
//!    axis rotates 90° mid-run, executed under the three run modes of the
//!    simulator backend — `Static` (the initial TreeMatch placement, never
//!    re-mapped), `Adaptive` (the online loop) and `Oracle` (free re-maps
//!    at the phase boundary);
//! 2. on the **real event runtime**, a paired-exchange program that
//!    switches partners mid-run: the monitoring hooks, drift detector and
//!    cooperative thread re-binding do the whole loop live.
//!
//! Run with `cargo run --example adaptive_stencil --release`.

use orwl_adapt::backend::SimBackend;
use orwl_adapt::drift::DriftConfig;
use orwl_adapt::engine::{adaptive_session_spec, AdaptConfig, AdaptiveEngine};
use orwl_adapt::replace::{MigrationCostModel, ReplacerConfig};
use orwl_core::prelude::*;
use orwl_core::Location;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::binding::RecordingBinder;
use orwl_topo::synthetic;
use std::sync::Arc;
use std::time::Duration;

const EPOCH_ITERATIONS: usize = 4;

fn main() {
    println!("{}", orwl_repro::banner());
    println!("adaptive re-placement on a rotating-sweep stencil (simulated 4-socket machine)\n");

    let machine = SimMachine::new(synthetic::cluster2016_subset(4).unwrap(), CostParams::cluster2016());
    let workload = PhasedWorkload::rotating_stencil(6, 65536.0, 1024.0, 16384.0, 131072.0, &[40, 280]);
    let config = AdaptConfig::evaluation();

    println!(
        "workload: {} tasks, {} iterations, sweep rotates after {} iterations",
        workload.n_tasks(),
        workload.total_iterations(),
        workload.phases[0].iterations,
    );
    println!(
        "policy: epoch = {EPOCH_ITERATIONS} iterations, drift threshold = {}, migration state = {} KiB/task\n",
        config.drift.threshold,
        config.replacer.model.task_state_bytes / 1024.0,
    );

    // One builder, three run modes — everything else identical.
    let session_in = |mode: Mode| {
        Session::builder()
            .topology(machine.topology().clone())
            .policy(Policy::TreeMatch)
            .control_threads(0)
            .mode(mode)
            .backend(SimBackend::new(machine.clone()).with_adapt_config(AdaptConfig::evaluation()))
            .build()
            .expect("the simulated configuration is valid")
    };
    let run = |mode: Mode| session_in(mode).run(workload.clone()).expect("the workload simulates");

    let fixed = run(Mode::Static);
    let adaptive = run(Mode::Adaptive(AdaptiveSpec::per_iterations(EPOCH_ITERATIONS)));
    let oracle = run(Mode::Oracle);

    println!("{:<16} {:>18} {:>14} {:>12}", "mode", "cumulative hop-B", "sim time (s)", "migrations");
    for report in [&fixed, &adaptive, &oracle] {
        println!(
            "{:<16} {:>18.3e} {:>14.4} {:>12}",
            report.mode,
            report.hop_bytes,
            report.time.seconds(),
            report.adapt.as_ref().map_or(0, |a| a.replacements),
        );
    }

    let vs_static = 100.0 * (1.0 - adaptive.hop_bytes / fixed.hop_bytes);
    let vs_oracle = 100.0 * (adaptive.hop_bytes / oracle.hop_bytes - 1.0);
    println!("\nadaptive saves {vs_static:.1}% of the static placement's hop-bytes");
    println!("and is within {vs_oracle:.2}% of the free-remap oracle");
    let deltas = &adaptive.adapt.as_ref().expect("adaptive runs report counters").drift_deltas;
    if let Some(max_delta) = deltas.iter().cloned().fold(None::<f64>, |a, d| Some(a.map_or(d, |m| m.max(d))))
    {
        println!("largest per-epoch drift delta observed: {max_delta:.3}");
    }

    real_runtime_act();
}

/// Act 2: the same loop live on the event runtime.  Sixteen tasks exchange
/// with a declared partner for the first half of the run, then switch to a
/// different partner; the runtime detects the drift from its lock-grant
/// hooks and re-binds the running threads.
fn real_runtime_act() {
    println!("\n--- act 2: live adaptation on the event runtime ---");
    let n = 16usize;
    let engine = AdaptiveEngine::new(AdaptConfig {
        decay: 0.0,
        drift: DriftConfig { threshold: 0.10, patience: 1, cooldown: 1 },
        replacer: ReplacerConfig {
            model: MigrationCostModel { task_state_bytes: 1.0 },
            horizon_epochs: 50.0,
            min_relative_gain: 0.0,
        },
    });
    // A recording binder keeps the demo independent of the host's real CPU
    // count (the CI container has a single core).
    let binder = Arc::new(RecordingBinder::new());
    let session = Session::builder()
        .topology(synthetic::cluster2016_subset(4).unwrap())
        .binder(binder.clone())
        .adaptive(adaptive_session_spec(Arc::clone(&engine), Duration::from_millis(15)))
        .backend(ThreadBackend)
        .build()
        .expect("the live configuration is valid");

    let locs: Vec<_> = (0..n).map(|i| Location::new(format!("pair-{i}"), 0u64)).collect();
    // The partner switch is an ORWL re-initialisation phase: the new read
    // requests are posted between two barriers, before any writer advances
    // past the boundary, so the new periodic schedule starts deadlock-free.
    let rendezvous = Arc::new(std::sync::Barrier::new(n));
    let mut program = OrwlProgram::new();
    for t in 0..n {
        let own = Arc::clone(&locs[t]);
        let first = Arc::clone(&locs[t ^ 1]);
        let second = Arc::clone(&locs[(t + 2) % n]);
        let rendezvous = Arc::clone(&rendezvous);
        let links =
            vec![LocationLink::write(locs[t].id(), 4096.0), LocationLink::read(locs[t ^ 1].id(), 4096.0)];
        program.add_task(TaskSpec::new(format!("pair-{t}"), links), move |_| {
            // Deterministic init: every request is posted before any task
            // starts acquiring, so no reader can land behind a write it
            // will never outwait.
            let mut write = own.iterative_handle(AccessMode::Write);
            write.request().unwrap();
            let mut read = first.iterative_handle(AccessMode::Read);
            read.request().unwrap();
            rendezvous.wait();
            for i in 0..120u64 {
                *write.acquire().unwrap() = i;
                let _ = *read.acquire().unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
            drop(read);
            rendezvous.wait();
            let mut read = second.iterative_handle(AccessMode::Read);
            read.request().unwrap();
            rendezvous.wait();
            for i in 0..400u64 {
                *write.acquire().unwrap() = 120 + i;
                let _ = *read.acquire().unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        });
    }

    let report = session.run(program).expect("adaptive run completes");
    let adapt = report.adapt.expect("adaptive runs report counters");
    let thread = report.thread.expect("thread backend reports details");
    println!(
        "{} tasks finished, wall time {:?}",
        thread.stats.tasks_finished,
        report.time.as_wall().unwrap()
    );
    println!(
        "epochs: {}, re-placements published: {}, live thread re-bindings applied: {}",
        adapt.epochs, adapt.replacements, adapt.rebinds_applied
    );
    let fired: Vec<u64> = engine.timeline().iter().filter(|r| r.drift_fired).map(|r| r.epoch).collect();
    println!("drift fired at epoch(s): {fired:?}");
}
