//! Placement explorer: see what Algorithm 1 does on a chosen machine and
//! workload, compared with the baseline policies — both through the static
//! metrics and through a short simulated execution of each policy via the
//! `Session` API.
//!
//! ```text
//! cargo run --release --example placement_explorer [preset] [stencil_side]
//! ```
//!
//! `preset` is one of the named topologies (`cluster2016-smp192`,
//! `dual-socket-smt`, `quad-socket-l3`, `laptop`, `uniprocessor`);
//! `stencil_side` is the side of the block-task grid (default 8, i.e. 64
//! communicating tasks).

use orwl_adapt::backend::SimBackend;
use orwl_comm::metrics::{mapping_cost_default, traffic_breakdown};
use orwl_comm::patterns::{stencil_2d, StencilSpec};
use orwl_core::session::Session;
use orwl_numasim::costmodel::CostParams;
use orwl_numasim::machine::SimMachine;
use orwl_numasim::taskgraph::TaskGraph;
use orwl_numasim::workload::PhasedWorkload;
use orwl_topo::synthetic;
use orwl_treematch::policies::{compute_placement, Policy};

fn main() {
    let mut args = std::env::args().skip(1);
    let preset = args.next().unwrap_or_else(|| "cluster2016-smp192".to_string());
    let side: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let Some(topo) = synthetic::preset(&preset) else {
        eprintln!("unknown preset {preset:?}; available: {:?}", synthetic::preset_names());
        std::process::exit(1);
    };

    println!("{}", orwl_repro::banner());
    println!(
        "machine: {} ({} PUs, {} cores, SMT: {})",
        topo.name(),
        topo.nb_pus(),
        topo.nb_cores(),
        topo.has_hyperthreading()
    );
    println!("workload: {side}x{side} LK23-style block tasks (9-point stencil)\n");
    println!("{}", topo.render_ascii());

    let spec = StencilSpec::nine_point_blocks(side, 2048, 8);
    let matrix = stencil_2d(&spec);
    let pus = topo.pu_os_indices();
    let machine = SimMachine::new(topo.clone(), CostParams::cluster2016());
    let graph = TaskGraph::stencil(&spec, 2048.0 * 2048.0, 8.0);

    println!(
        "{:<12} {:>16} {:>12} {:>14} {:>12} {:>13}",
        "policy", "comm cost", "hop-bytes", "NUMA-local %", "nodes used", "sim time (s)"
    );
    for policy in Policy::all() {
        let placement = compute_placement(policy, &topo, &matrix, 1);
        let mapping = placement.compute_mapping_with(|t| pus[t % pus.len()]);
        let cost = mapping_cost_default(&matrix, &topo, &mapping);
        let hops = orwl_comm::metrics::hop_bytes(&matrix, &topo, &mapping);
        let breakdown = traffic_breakdown(&matrix, &topo, &mapping);
        // A short simulated execution of the same placement, through the
        // unified Session front door.
        let session = Session::builder()
            .topology(topo.clone())
            .policy(policy)
            .control_threads(1)
            .backend(SimBackend::new(machine.clone()))
            .build()
            .expect("the explorer configuration is valid");
        let report =
            session.run(PhasedWorkload::single_phase(graph.clone(), 3)).expect("the workload simulates");
        println!(
            "{:<12} {:>16.3e} {:>12.3e} {:>13.1}% {:>12} {:>13.4}",
            policy.name(),
            cost,
            hops,
            100.0 * breakdown.local_fraction(),
            placement.numa_nodes_used(&topo),
            report.time.seconds(),
        );
    }

    println!("\nDetailed TreeMatch placement (first 16 tasks):");
    let placement = compute_placement(Policy::TreeMatch, &topo, &matrix, 1);
    for (t, pu) in placement.compute.iter().take(16).enumerate() {
        match pu {
            Some(p) => println!("  task {t:>3} -> PU {p}"),
            None => println!("  task {t:>3} -> (os)"),
        }
    }
    if let Some(Some(pu)) = placement.control.first() {
        println!("  control 0 -> PU {pu}");
    }
}
