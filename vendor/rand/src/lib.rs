//! Offline stand-in for the subset of `rand` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  The generator is **not** the real `StdRng` (ChaCha12);
//! it is an xoshiro256** seeded through splitmix64.  Every consumer in this
//! workspace only requires seeded reproducibility and reasonable statistical
//! quality, both of which xoshiro provides.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    fn gen_index(&mut self, bound: usize) -> usize
    where
        Self: Sized,
    {
        debug_assert!(bound > 0, "gen_index bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * bound,
        // irrelevant for the workloads here.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real
    /// `StdRng`; the stream differs from upstream `rand`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling of slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements staying put is ~impossible");
    }
}
