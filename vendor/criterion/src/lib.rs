//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  This harness measures each benchmark with a simple
//! warmup + sampled-mean protocol and prints one line per benchmark:
//!
//! ```text
//! treematch_scaling/stencil_tasks/64   time: [412.3 µs]  (20 samples)
//! ```
//!
//! No statistical analysis, plots or baselines — just honest wall-clock
//! means, which is what the repository's EXPERIMENTS.md records.  The
//! `--test`-mode flag passed by `cargo test --benches` is honoured by
//! running every benchmark exactly once.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { full: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { full: name }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Mean wall-clock duration of one iteration, filled by [`Bencher::iter`].
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean duration over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.measured = Some(Duration::ZERO);
            return;
        }
        // Warmup: one untimed call.
        black_box(routine());
        let started = Instant::now();
        let mut n = 0u32;
        // Sample until the budget is met, but never run longer than ~2 s so
        // heavyweight benchmarks stay usable in CI.
        while n < self.samples as u32 && (n < 1 || started.elapsed() < Duration::from_secs(2)) {
            black_box(routine());
            n += 1;
        }
        self.measured = Some(started.elapsed() / n.max(1));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: String, mut f: F) {
        let mut b =
            Bencher { samples: self.sample_size, test_mode: self.criterion.test_mode, measured: None };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        match b.measured {
            Some(d) if !self.criterion.test_mode => {
                println!("{label:<60} time: [{}]  ({} samples)", format_duration(d), self.sample_size);
            }
            Some(_) => println!("{label:<60} ok (test mode)"),
            None => println!("{label:<60} skipped (Bencher::iter never called)"),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self {
        self.run(id.into().full, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.full, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` / `cargo test --benches` pass `--test`;
        // run every benchmark once, untimed, in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group = BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 100 };
        group.run(String::from("base"), f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { test_mode: false };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(5);
            g.bench_function("spin", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(ran)
                })
            });
            g.finish();
        }
        assert!(ran >= 2, "warmup + at least one sample, got {ran}");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u64;
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::new("once", 1), &7u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                black_box(x)
            })
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).full, "f/64");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
