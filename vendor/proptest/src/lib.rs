//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  Supported surface:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * range strategies over the integer types used in the tests, tuples of
//!   strategies, [`collection::vec`], and [`Strategy::prop_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! **No shrinking** is performed: a failing case reports its inputs via the
//! panic message (every generated value must be `Debug`), which is enough to
//! reproduce since the runner is deterministically seeded per test name.

use std::fmt;
use std::ops::Range;

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases executed per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic per-test random source.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Builds the deterministic generator for a named property.
    pub fn rng_for(test_name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rand::Rng::gen_index(rng, span as usize) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rand::Rng::gen::<f64>(rng) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a property, failing the current case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Declares property tests.  Each listed function becomes a `#[test]` that
/// draws its arguments from the given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(concat!($(stringify!($arg), " = {:?}, ",)* ""), $(&$arg),*);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}/{}: {e} [inputs: {inputs}]",
                        stringify!($name), config.cases);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = usize> {
        (0usize..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in 0u64..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn tuples_and_map_compose(pair in (1usize..4, 1usize..4), e in even()) {
            prop_assert!(pair.0 * pair.1 < 16);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0usize..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let mut c = crate::test_runner::rng_for("y");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert_ne!(b.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(4);
            let mut rng = crate::test_runner::rng_for("failing");
            for _case in 0..config.cases {
                let x = Strategy::generate(&(0usize..10), &mut rng);
                let outcome: Result<(), TestCaseError> = (|| {
                    prop_assert!(x > 100, "x too small: {x}");
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("{e}");
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("too small"), "{msg}");
    }
}
