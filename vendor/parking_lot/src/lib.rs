//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  This crate covers:
//!
//! * [`Mutex`] / [`MutexGuard`] — `lock()` without poisoning;
//! * [`Condvar`] with `wait(&mut guard)` / `wait_until(..)` signatures;
//! * [`RwLock`] with the `arc_lock` extensions `read_arc` / `write_arc`
//!   returning owned guards ([`lock_api::ArcRwLockReadGuard`] /
//!   [`lock_api::ArcRwLockWriteGuard`]).
//!
//! Semantics match `std` primitives (poisoning is swallowed, matching
//! parking_lot's behaviour of not poisoning at all).

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` except transiently inside [`Condvar::wait`].
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] taken by `&mut`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or until `deadline`, whichever comes first.
    pub fn wait_until<T>(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock with owned (Arc) guards
// ---------------------------------------------------------------------------

/// Marker type standing in for parking_lot's raw lock parameter in the
/// [`lock_api`] guard types.
pub struct RawRwLock {
    _priv: (),
}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// A readers-writer lock supporting both borrowed and `Arc`-owned guards.
pub struct RwLock<T: ?Sized> {
    state: std::sync::Mutex<RwState>,
    cond: std::sync::Condvar,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialised by `state` exactly like a standard
// readers-writer lock (shared readers xor one writer).
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            state: std::sync::Mutex::new(RwState::default()),
            cond: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    fn lock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.writer {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.readers += 1;
    }

    fn lock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.writer || s.readers > 0 {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.writer = true;
    }

    fn unlock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.readers -= 1;
        if s.readers == 0 {
            self.cond.notify_all();
        }
    }

    fn unlock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.writer = false;
        self.cond.notify_all();
    }

    /// Acquires shared (read) access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Acquires exclusive (write) access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Acquires shared access through an `Arc`, returning an owned guard.
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        self.lock_shared();
        lock_api::ArcRwLockReadGuard { lock: Arc::clone(self), _raw: std::marker::PhantomData }
    }

    /// Acquires exclusive access through an `Arc`, returning an owned guard.
    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        self.lock_exclusive();
        lock_api::ArcRwLockWriteGuard { lock: Arc::clone(self), _raw: std::marker::PhantomData }
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock")
    }
}

/// Borrowed shared guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: shared access held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_shared();
    }
}

/// Borrowed exclusive guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive access held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive access held.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock_exclusive();
    }
}

/// Owned-guard types mirroring `parking_lot::lock_api`.
pub mod lock_api {
    use super::{RawRwLock, RwLock};
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// Owned shared guard holding the lock's `Arc`.
    pub struct ArcRwLockReadGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T: ?Sized> std::ops::Deref for ArcRwLockReadGuard<RawRwLock, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: shared access held until drop.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.unlock_shared();
        }
    }

    /// Owned exclusive guard holding the lock's `Arc`.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<T: ?Sized> std::ops::Deref for ArcRwLockWriteGuard<RawRwLock, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: exclusive access held until drop.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for ArcRwLockWriteGuard<RawRwLock, T> {
        fn deref_mut(&mut self) -> &mut T {
            // Safety: exclusive access held until drop.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.unlock_exclusive();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_arc_guards_share_and_exclude() {
        let l = Arc::new(RwLock::new(5i32));
        let r1 = l.read_arc();
        let r2 = l.read_arc();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        let mut w = l.write_arc();
        *w = 6;
        drop(w);
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn writer_blocks_until_readers_leave() {
        let l = Arc::new(RwLock::new(0u64));
        let r = l.read_arc();
        let l2 = Arc::clone(&l);
        let t = std::thread::spawn(move || {
            let mut w = l2.write_arc();
            *w += 1;
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(*r, 0, "writer must not run while a reader holds the lock");
        drop(r);
        t.join().unwrap();
        assert_eq!(*l.read(), 1);
    }
}
