//! Offline stand-in for the tiny subset of `libc` this workspace uses:
//! the Linux CPU-affinity interface (`cpu_set_t`, `CPU_*` helpers and
//! `sched_{set,get}affinity`).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  The layout of [`cpu_set_t`] matches glibc (1024 bits).

#![allow(non_camel_case_types, non_snake_case)]

/// Process/thread id, as in `<sys/types.h>`.
pub type pid_t = i32;

/// Plain C `int`, as used by the signal interface.
pub type c_int = i32;

/// Immediate, uncatchable termination.
pub const SIGKILL: c_int = 9;
/// Polite termination request.
pub const SIGTERM: c_int = 15;
/// Stops (freezes) a process until `SIGCONT`.
pub const SIGSTOP: c_int = 19;
/// Resumes a stopped process.
pub const SIGCONT: c_int = 18;

const CPU_SETSIZE: usize = 1024;
const BITS: usize = 64;

/// Fixed-size CPU mask matching glibc's `cpu_set_t` (128 bytes).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE / BITS],
}

/// Clears every CPU in `set`.
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; CPU_SETSIZE / BITS];
}

/// Adds `cpu` to `set`; out-of-range indices are ignored, as in glibc.
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE {
        set.bits[cpu / BITS] |= 1u64 << (cpu % BITS);
    }
}

/// True when `cpu` is in `set`; out-of-range indices report `false`.
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE && set.bits[cpu / BITS] & (1u64 << (cpu % BITS)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Binds thread `pid` (0 = caller) to the CPUs of `mask`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: usize, mask: *const cpu_set_t) -> i32;
    /// Reads the affinity mask of thread `pid` (0 = caller) into `mask`.
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: usize, mask: *mut cpu_set_t) -> i32;
    /// Sends signal `sig` to process `pid`, as in `<signal.h>`.
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_set_and_test_roundtrip() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_ZERO(&mut set);
        assert!(!CPU_ISSET(0, &set));
        CPU_SET(0, &mut set);
        CPU_SET(63, &mut set);
        CPU_SET(64, &mut set);
        CPU_SET(1023, &mut set);
        CPU_SET(4096, &mut set); // ignored
        assert!(CPU_ISSET(0, &set));
        assert!(CPU_ISSET(63, &set));
        assert!(CPU_ISSET(64, &set));
        assert!(CPU_ISSET(1023, &set));
        assert!(!CPU_ISSET(1, &set));
        assert!(!CPU_ISSET(4096, &set));
        assert_eq!(std::mem::size_of::<cpu_set_t>(), 128, "glibc layout");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn getaffinity_reports_at_least_one_cpu() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        let rc = unsafe { sched_getaffinity(0, std::mem::size_of::<cpu_set_t>(), &mut set) };
        assert_eq!(rc, 0);
        assert!((0..CPU_SETSIZE).any(|c| CPU_ISSET(c, &set)));
    }
}
