//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! the multi-producer **multi-consumer** unbounded channel.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies
//! under `vendor/`.  Unlike `std::sync::mpsc`, receivers here are cloneable
//! and compete for messages, which is what the ORWL runtime's control-thread
//! pool relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.  Cloneable: receivers
    /// compete for messages.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake every blocked receiver so it can observe
                // disconnection.  The mutex must be taken (and released)
                // before notifying: a receiver that already loaded
                // `senders == 1` holds the lock until its `wait` parks it,
                // so acquiring the lock here guarantees the receiver is
                // either parked (the notify reaches it) or has not checked
                // yet (it will observe `senders == 0`).  Notifying without
                // the lock can fire into the gap and strand the receiver.
                drop(self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()));
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.cond.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn messages_flow_in_order() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(9).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn cloned_receivers_compete_without_losing_messages() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        let n = 1000u32;
        let c1 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        let c2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = c1.join().unwrap();
        all.extend(c2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }
}
